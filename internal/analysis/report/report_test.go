package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"symbiosys/internal/analysis"
	"symbiosys/internal/core"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureEvents fabricates one clean two-hop request with queue waits,
// mirroring the analysis package's path fixtures.
func fixtureEvents(reqID uint64, base int64) []core.Event {
	bcMid := core.Breadcrumb(0).Push("a_rpc")
	bcLeaf := bcMid.Push("b_rpc")
	evs := []core.Event{
		{RequestID: reqID, Kind: core.EvOriginStart, Timestamp: base,
			Entity: "cli", RPCName: "a_rpc", Breadcrumb: uint64(bcMid)},
		{RequestID: reqID, Kind: core.EvTargetStart, Timestamp: base + 100,
			Entity: "mid", RPCName: "a_rpc", Breadcrumb: uint64(bcMid), QueueNanos: 40},
		{RequestID: reqID, Kind: core.EvOriginStart, Timestamp: base + 200,
			Entity: "mid", RPCName: "b_rpc", Breadcrumb: uint64(bcLeaf)},
		{RequestID: reqID, Kind: core.EvTargetStart, Timestamp: base + 300,
			Entity: "leaf", RPCName: "b_rpc", Breadcrumb: uint64(bcLeaf), QueueNanos: 30},
		{RequestID: reqID, Kind: core.EvTargetEnd, Timestamp: base + 400,
			Entity: "leaf", RPCName: "b_rpc", Breadcrumb: uint64(bcLeaf), Duration: 100},
		{RequestID: reqID, Kind: core.EvOriginEnd, Timestamp: base + 500,
			Entity: "mid", RPCName: "b_rpc", Breadcrumb: uint64(bcLeaf), Duration: 300},
		{RequestID: reqID, Kind: core.EvTargetEnd, Timestamp: base + 600,
			Entity: "mid", RPCName: "a_rpc", Breadcrumb: uint64(bcMid), Duration: 500},
		{RequestID: reqID, Kind: core.EvOriginEnd, Timestamp: base + 700,
			Entity: "cli", RPCName: "a_rpc", Breadcrumb: uint64(bcMid), Duration: 700},
	}
	for i := range evs {
		evs[i].Order = uint64(i + 1)
	}
	return evs
}

func fixtureFlame(n int, base int64) *analysis.Flame {
	var dumps []*core.TraceDump
	for i := 0; i < n; i++ {
		dumps = append(dumps, &core.TraceDump{
			Entity: "d", Events: fixtureEvents(uint64(i+1), base+int64(i)*10_000),
		})
	}
	return analysis.BuildFlame(analysis.MergeTraces(dumps))
}

// fixtureModel is the deterministic model behind the golden files:
// fixed epoch, caller-stamped Generated line.
func fixtureModel() *Model {
	m := FromFlame("Golden dominant paths", fixtureFlame(6, 1_000_000_000), 10)
	m.Generated = "GOLDEN"
	m.Notes = append(m.Notes, "fixture note")
	return m
}

func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run `go test ./internal/analysis/report -update` to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenCLI(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCLI(&buf, fixtureModel()); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "flame_cli.golden", buf.Bytes())
}

func TestGoldenHTML(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHTML(&buf, fixtureModel()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Structural assertions independent of the byte-exact golden: the
	// flame renders per-segment bars with p50/p99 detail.
	for _, want := range []string{"<!DOCTYPE html>", "barfill c-queue", "barfill c-exec", "p50", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("html report missing %q:\n%s", want, out)
		}
	}
	goldenCompare(t, "flame_html.golden", buf.Bytes())
}

func TestTUIRendersANSI(t *testing.T) {
	// The tui mode is the cli layout plus ANSI color and block bars; it
	// is not golden-pinned (terminal styling may evolve), just shape-
	// checked.
	var buf bytes.Buffer
	if err := WriteTUI(&buf, fixtureModel()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "\x1b[") {
		t.Fatal("tui output has no ANSI escapes")
	}
	if !strings.Contains(out, "Golden dominant paths") {
		t.Fatal("tui output missing title")
	}
}

func TestGoldenDiffCLI(t *testing.T) {
	before := fixtureFlame(6, 1_000_000_000)
	after := fixtureFlame(6, 2_000_000_000)
	d := analysis.DiffFlames(before, after)
	m := FromFlameDiff("Golden diff", d, 10)
	m.Generated = "GOLDEN"
	var buf bytes.Buffer
	if err := WriteCLI(&buf, m); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "diff_cli.golden", buf.Bytes())
}

func TestParseMode(t *testing.T) {
	cases := map[string]Mode{"": ModeCLI, "cli": ModeCLI, "tui": ModeTUI, "html": ModeHTML}
	for in, want := range cases {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseMode("pdf"); err == nil {
		t.Fatal("ParseMode accepted bogus mode")
	}
}

func TestWriteFileAndExt(t *testing.T) {
	dir := t.TempDir()
	m := fixtureModel()
	path := filepath.Join(dir, "r"+ModeHTML.Ext())
	if err := WriteFile(path, ModeHTML, m); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<!DOCTYPE html>") {
		t.Fatalf("unexpected file head: %.40s", data)
	}
	if ModeCLI.Ext() != ".txt" || ModeTUI.Ext() != ".txt" {
		t.Fatal("text modes must use .txt")
	}
}

func TestSystemStatsModelSurfacesIncomplete(t *testing.T) {
	m := FromSystemStats("stats", []analysis.EntityStats{{Entity: "e1", Events: 4}}, 3)
	found := false
	for _, n := range m.Notes {
		if strings.Contains(n, "3 requests have incomplete span sets") {
			found = true
		}
	}
	if !found {
		t.Fatalf("incomplete note missing: %v", m.Notes)
	}
}
