package analysis

import (
	"sort"
	"time"

	"symbiosys/internal/core"
)

// Dominant-path aggregation: fold per-request critical paths by shape
// into a flame-style summary — which path shapes dominate a run, and
// within each shape, which segments carry the time. Per-segment timing
// reuses core.CallStats (two-per-octave log histogram), so p50/p99 come
// from the same estimator as the callpath profile.

// FlameSegment is one aggregated segment position of a path shape.
type FlameSegment struct {
	Kind  SegKind
	RPC   string
	Depth int
	Stats core.CallStats
}

// P50 and P99 expose the segment's percentile estimates.
func (s *FlameSegment) P50() time.Duration { return s.Stats.Percentile(50) }

// P99 estimates the 99th percentile of the segment's duration.
func (s *FlameSegment) P99() time.Duration { return s.Stats.Percentile(99) }

// FlamePath is one folded path shape: every request whose critical path
// had the same (kind, rpc, depth) segment sequence.
type FlamePath struct {
	Shape string
	// Count is how many requests folded here; CumNanos their summed
	// path totals (the shape's share of run latency).
	Count    uint64
	CumNanos uint64
	// Total aggregates whole-path durations; Segments aggregates each
	// segment position across the folded requests.
	Total    core.CallStats
	Segments []FlameSegment
	// Failed / Retried / Incomplete count folded paths with those
	// flags (shapes differ when retries add segments, but a terminal
	// failure doesn't change the shape).
	Failed     uint64
	Retried    uint64
	Incomplete uint64
}

// MeanNanos is the shape's average whole-path latency.
func (f *FlamePath) MeanNanos() int64 {
	if f.Count == 0 {
		return 0
	}
	return int64(f.CumNanos / f.Count)
}

// DominantSegment returns the index of the segment with the largest
// cumulative time (-1 when empty).
func (f *FlamePath) DominantSegment() int {
	best, bestCum := -1, uint64(0)
	for i := range f.Segments {
		if c := f.Segments[i].Stats.CumNanos; best < 0 || c > bestCum {
			best, bestCum = i, c
		}
	}
	return best
}

// Flame is the dominant-path summary of one run.
type Flame struct {
	Paths []FlamePath
	Stats PathStats
}

// BuildFlame extracts every request's critical path and folds by shape.
func BuildFlame(ts *TraceSet) *Flame {
	paths, stats := ExtractPaths(ts)
	f := FoldPaths(paths)
	f.Stats = stats
	return f
}

// FoldPaths folds already-extracted critical paths by shape, ordered by
// cumulative time (descending) — the dominant shape first.
func FoldPaths(paths []CriticalPath) *Flame {
	byShape := make(map[string]*FlamePath)
	var order []string
	for i := range paths {
		p := &paths[i]
		fp := byShape[p.Shape]
		if fp == nil {
			fp = &FlamePath{Shape: p.Shape, Segments: make([]FlameSegment, len(p.Segments))}
			for j, s := range p.Segments {
				fp.Segments[j] = FlameSegment{Kind: s.Kind, RPC: s.RPC, Depth: s.Depth}
			}
			byShape[p.Shape] = fp
			order = append(order, p.Shape)
		}
		fp.Count++
		fp.CumNanos += uint64(p.TotalNanos)
		fp.Total.Record(time.Duration(p.TotalNanos))
		for j, s := range p.Segments {
			fp.Segments[j].Stats.Record(time.Duration(s.DurNanos))
		}
		if p.Failed {
			fp.Failed++
		}
		if p.Attempts > 1 {
			fp.Retried++
		}
		if p.Incomplete {
			fp.Incomplete++
		}
	}
	f := &Flame{Paths: make([]FlamePath, 0, len(order))}
	for _, shape := range order {
		f.Paths = append(f.Paths, *byShape[shape])
	}
	sort.SliceStable(f.Paths, func(i, j int) bool {
		if f.Paths[i].CumNanos != f.Paths[j].CumNanos {
			return f.Paths[i].CumNanos > f.Paths[j].CumNanos
		}
		return f.Paths[i].Shape < f.Paths[j].Shape
	})
	return f
}
