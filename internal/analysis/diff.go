package analysis

import (
	"fmt"
	"io"
	"sort"
	"time"

	"symbiosys/internal/core"
)

// ProfileDelta compares one callpath between two runs ("before" and
// "after") — the request-flow-comparison workflow for diagnosing
// performance changes between service configurations (the analysis the
// paper's §V-C performs by hand across C1…C7).
type ProfileDelta struct {
	BC   core.Breadcrumb
	Name string

	CountBefore, CountAfter uint64
	MeanBefore, MeanAfter   time.Duration

	// MeanRatio is after/before mean latency (1.0 = unchanged; absent
	// sides yield 0 or +Inf semantics are avoided — see New/Gone).
	MeanRatio float64

	// New marks callpaths present only after; Gone only before —
	// structural anomalies in the request flow.
	New  bool
	Gone bool

	// ComponentDeltas holds per-component mean-time changes
	// (after - before), nanoseconds per call.
	ComponentDeltas [core.NumComponents]int64
}

// CompareProfiles diffs two merged profiles by callpath, ranking results
// by absolute change in mean latency (structural changes first).
func CompareProfiles(before, after *MergedProfile) []ProfileDelta {
	rowsB := make(map[core.Breadcrumb]CallpathRow)
	for _, r := range before.DominantCallpaths(0) {
		rowsB[r.BC] = r
	}
	rowsA := make(map[core.Breadcrumb]CallpathRow)
	for _, r := range after.DominantCallpaths(0) {
		rowsA[r.BC] = r
	}

	names := make(map[uint16]string)
	for h, n := range before.Names {
		names[h] = n
	}
	for h, n := range after.Names {
		names[h] = n
	}

	seen := make(map[core.Breadcrumb]bool)
	var deltas []ProfileDelta
	add := func(bc core.Breadcrumb) {
		if seen[bc] {
			return
		}
		seen[bc] = true
		b, hasB := rowsB[bc]
		a, hasA := rowsA[bc]
		d := ProfileDelta{
			BC:   bc,
			Name: core.FormatTable(names, bc),
			New:  !hasB && hasA,
			Gone: hasB && !hasA,
		}
		if hasB {
			d.CountBefore = b.Count
			d.MeanBefore = b.Mean()
		}
		if hasA {
			d.CountAfter = a.Count
			d.MeanAfter = a.Mean()
		}
		if hasB && hasA && d.MeanBefore > 0 {
			d.MeanRatio = float64(d.MeanAfter) / float64(d.MeanBefore)
		}
		for i := range d.ComponentDeltas {
			var mb, ma int64
			if hasB && b.Count > 0 {
				mb = int64(b.Components[i] / b.Count)
			}
			if hasA && a.Count > 0 {
				ma = int64(a.Components[i] / a.Count)
			}
			d.ComponentDeltas[i] = ma - mb
		}
		deltas = append(deltas, d)
	}
	for bc := range rowsB {
		add(bc)
	}
	for bc := range rowsA {
		add(bc)
	}

	sort.Slice(deltas, func(i, j int) bool {
		// Structural changes first, then by |mean delta|.
		si := deltas[i].New || deltas[i].Gone
		sj := deltas[j].New || deltas[j].Gone
		if si != sj {
			return si
		}
		di := absDur(deltas[i].MeanAfter - deltas[i].MeanBefore)
		dj := absDur(deltas[j].MeanAfter - deltas[j].MeanBefore)
		if di != dj {
			return di > dj
		}
		return deltas[i].BC < deltas[j].BC
	})
	return deltas
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

// RenderDiff writes the comparison report, top n rows (n <= 0: all).
func RenderDiff(w io.Writer, deltas []ProfileDelta, n int) {
	if n > 0 && len(deltas) > n {
		deltas = deltas[:n]
	}
	fmt.Fprintf(w, "SYMBIOSYS profile comparison — %d callpaths\n", len(deltas))
	for _, d := range deltas {
		switch {
		case d.New:
			fmt.Fprintf(w, "\n[NEW]  %s\n       after: calls %d  mean %v\n",
				d.Name, d.CountAfter, d.MeanAfter.Round(time.Microsecond))
		case d.Gone:
			fmt.Fprintf(w, "\n[GONE] %s\n       before: calls %d  mean %v\n",
				d.Name, d.CountBefore, d.MeanBefore.Round(time.Microsecond))
		default:
			fmt.Fprintf(w, "\n[%+.2fx] %s\n", d.MeanRatio, d.Name)
			fmt.Fprintf(w, "       mean %v -> %v   calls %d -> %d\n",
				d.MeanBefore.Round(time.Microsecond), d.MeanAfter.Round(time.Microsecond),
				d.CountBefore, d.CountAfter)
			// Name the component with the biggest per-call movement.
			var worst core.Component
			var worstAbs int64 = -1
			for i, cd := range d.ComponentDeltas {
				v := cd
				if v < 0 {
					v = -v
				}
				if v > worstAbs {
					worstAbs = v
					worst = core.Component(i)
				}
			}
			if worstAbs > 0 {
				fmt.Fprintf(w, "       biggest mover: %s %+v/call\n",
					worst.Name(), time.Duration(d.ComponentDeltas[worst]).Round(time.Microsecond))
			}
		}
	}
}
