package analysis

import (
	"fmt"
	"sort"
	"strings"

	"symbiosys/internal/core"
)

// This file implements per-request critical-path extraction: walking a
// request's Lamport-ordered span tree across hops (origin → forward →
// handler → nested forwards → response, including retry attempts and
// batch fan-in) and emitting the longest dependency chain with
// per-segment attribution. It is the request-level answer to the
// paper's "which interval bounded this request" question that the flat
// callpath profile can only answer in aggregate.

// SegKind classifies one segment of a request's critical path — the
// segment taxonomy of DESIGN.md §10.
type SegKind int8

// Critical-path segment kinds.
const (
	// SegNetOut is the request transit: origin t1 → target t5, minus
	// the queue and batch-window shares (serialization + fabric + RDMA
	// + progress-loop delivery).
	SegNetOut SegKind = iota
	// SegQueue is the handler-pool wait (t4→t5): the request's ULT was
	// spawned but no execution stream picked it up — the paper's
	// saturation signal, per request.
	SegQueue
	// SegExec is target handler execution, exclusive of nested hops.
	SegExec
	// SegNetBack is the response transit: target t8 → origin t14
	// (response serialization + fabric + origin completion delivery).
	SegNetBack
	// SegBackoff is the idle gap between a failed attempt and its
	// retry — client-side backoff wait.
	SegBackoff
	// SegBatchWindow is the client coalescer window wait: the op sat
	// batched but unsent.
	SegBatchWindow
	// SegUnmatched covers a client span with no target view: the
	// request died in flight (dropped, shed before tracing, or the
	// target's events were lost).
	SegUnmatched

	// NumSegKinds sizes per-kind arrays.
	NumSegKinds
)

// String names the segment kind.
func (k SegKind) String() string {
	switch k {
	case SegNetOut:
		return "net_out"
	case SegQueue:
		return "queue"
	case SegExec:
		return "exec"
	case SegNetBack:
		return "net_back"
	case SegBackoff:
		return "backoff"
	case SegBatchWindow:
		return "batch_window"
	case SegUnmatched:
		return "unmatched"
	}
	return "?"
}

// PathSegment is one attributed interval of a critical path.
type PathSegment struct {
	Kind SegKind
	// RPC names the hop the segment belongs to; Entity the process the
	// time was observed on.
	RPC    string
	Entity string
	// Depth is the hop's breadcrumb depth (1 = root hop).
	Depth      int
	StartNanos int64
	DurNanos   int64
	// Failed marks segments belonging to a failed attempt.
	Failed bool
}

// CriticalPath is the longest dependency chain of one request.
type CriticalPath struct {
	RequestID  uint64
	TotalNanos int64
	Segments   []PathSegment
	// Shape is the fold key: the sequment sequence's (kind, rpc, depth)
	// signature, stable across runs of the same workload.
	Shape string
	// Attempts counts client attempts on the root hop (>1 = retried).
	Attempts int
	// Batched reports that at least one hop traveled in a coalesced
	// frame (a batch-window segment or a BatchID-stamped span).
	Batched bool
	// Failed marks a path whose terminal attempt ended in an error.
	Failed bool
	// Incomplete marks a path with a hop missing its target view (no
	// t5/t8 pair): attribution below that hop is a single unmatched
	// segment rather than a breakdown.
	Incomplete bool
}

// DominantSegment returns the index of the longest segment (-1 when
// empty) — "what bounded this request".
func (p *CriticalPath) DominantSegment() int {
	best, bestDur := -1, int64(-1)
	for i, s := range p.Segments {
		if s.DurNanos > bestDur {
			best, bestDur = i, s.DurNanos
		}
	}
	return best
}

// PathStats summarizes one extraction sweep.
type PathStats struct {
	// Requests is how many distinct request IDs the trace set held;
	// Extracted how many yielded a critical path.
	Requests  int
	Extracted int
	// Incomplete counts requests whose span set was missing a t5/t8
	// target pair somewhere on the path — surfaced instead of silently
	// skipped (their attribution degrades to an unmatched segment).
	Incomplete int
	// Retried and Failed count paths with >1 root attempt and paths
	// whose terminal attempt failed.
	Retried int
	Failed  int
}

// ExtractPaths computes the critical path of every request in the trace
// set.
func ExtractPaths(ts *TraceSet) ([]CriticalPath, PathStats) {
	reqs := ts.Requests()
	ids := make([]uint64, 0, len(reqs))
	for id := range reqs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var stats PathStats
	stats.Requests = len(ids)
	paths := make([]CriticalPath, 0, len(ids))
	for _, id := range ids {
		p := PathFromSpans(id, SpansOf(id, reqs[id]))
		if p == nil {
			continue
		}
		stats.Extracted++
		if p.Incomplete {
			stats.Incomplete++
		}
		if p.Attempts > 1 {
			stats.Retried++
		}
		if p.Failed {
			stats.Failed++
		}
		paths = append(paths, *p)
	}
	return paths, stats
}

// ExtractPath computes one request's critical path from its
// Lamport-ordered events.
func ExtractPath(requestID uint64, evs []core.Event) *CriticalPath {
	return PathFromSpans(requestID, SpansOf(requestID, evs))
}

// pathBuilder carries the indexes one extraction works over.
type pathBuilder struct {
	spans []Span
	// clientByBC / serverByBC index span positions per callpath,
	// sorted by start time.
	clientByBC map[core.Breadcrumb][]int
	serverByBC map[core.Breadcrumb][]int
	serverUsed []bool

	path *CriticalPath
}

// PathFromSpans computes the critical path from one request's
// reconstructed spans (SpansOf output). Returns nil when the request
// has no spans at all.
func PathFromSpans(requestID uint64, spans []Span) *CriticalPath {
	if len(spans) == 0 {
		return nil
	}
	b := &pathBuilder{
		spans:      spans,
		clientByBC: make(map[core.Breadcrumb][]int),
		serverByBC: make(map[core.Breadcrumb][]int),
		serverUsed: make([]bool, len(spans)),
		path:       &CriticalPath{RequestID: requestID},
	}
	for i, s := range spans {
		if s.Kind == "CLIENT" {
			b.clientByBC[s.Breadcrumb] = append(b.clientByBC[s.Breadcrumb], i)
		} else {
			b.serverByBC[s.Breadcrumb] = append(b.serverByBC[s.Breadcrumb], i)
		}
		if s.BatchID != 0 {
			b.path.Batched = true
		}
	}
	byStart := func(idx []int) {
		sort.SliceStable(idx, func(i, j int) bool {
			return spans[idx[i]].StartNanos < spans[idx[j]].StartNanos
		})
	}
	for _, idx := range b.clientByBC {
		byStart(idx)
	}
	for _, idx := range b.serverByBC {
		byStart(idx)
	}

	rootBC, ok := b.rootBreadcrumb()
	if !ok {
		return nil
	}
	if attempts := b.clientByBC[rootBC]; len(attempts) > 0 {
		b.path.Attempts = b.expandHop(rootBC, attempts)
	} else {
		// Server-only view (the origin was unprofiled): expand the
		// earliest root server span's interior directly.
		si := b.serverByBC[rootBC][0]
		b.serverUsed[si] = true
		b.path.Incomplete = true
		b.expandServer(b.spans[si])
	}

	segs := b.path.Segments
	if len(segs) == 0 {
		return nil
	}
	first, last := segs[0], segs[len(segs)-1]
	b.path.TotalNanos = last.StartNanos + last.DurNanos - first.StartNanos
	b.path.Shape = shapeOf(segs)
	return b.path
}

// rootBreadcrumb picks the path's root hop: the shallowest breadcrumb
// observed, earliest first on ties.
func (b *pathBuilder) rootBreadcrumb() (core.Breadcrumb, bool) {
	best := core.Breadcrumb(0)
	bestDepth, bestStart := int(^uint(0)>>1), int64(0)
	found := false
	consider := func(bc core.Breadcrumb, start int64) {
		d := bc.Depth()
		if !found || d < bestDepth || (d == bestDepth && start < bestStart) {
			best, bestDepth, bestStart, found = bc, d, start, true
		}
	}
	for bc, idx := range b.clientByBC {
		consider(bc, b.spans[idx[0]].StartNanos)
	}
	if !found {
		for bc, idx := range b.serverByBC {
			consider(bc, b.spans[idx[0]].StartNanos)
		}
	}
	return best, found
}

// emit appends one segment, dropping empty intervals.
func (b *pathBuilder) emit(seg PathSegment) {
	if seg.DurNanos <= 0 {
		return
	}
	b.path.Segments = append(b.path.Segments, seg)
}

// expandHop walks one hop's client attempts (retries share the
// breadcrumb; earlier attempts carry Failed terminal events) and emits
// the attempt chain with backoff gaps between attempts, returning the
// chain length (sequential attempts). Overlapping same-breadcrumb
// spans (concurrent siblings, e.g. batch fan-in under one request ID)
// are reduced to the dominant one — the span ending last bounds
// completion, so it alone is on the critical path and siblings do not
// count as retry attempts.
func (b *pathBuilder) expandHop(bc core.Breadcrumb, attempts []int) int {
	chain := make([]int, 0, len(attempts))
	for _, i := range attempts {
		s := b.spans[i]
		if len(chain) == 0 {
			chain = append(chain, i)
			continue
		}
		last := b.spans[chain[len(chain)-1]]
		if s.StartNanos >= last.StartNanos+last.DurNanos {
			chain = append(chain, i) // sequential: a retry attempt
		} else if s.StartNanos+s.DurNanos > last.StartNanos+last.DurNanos {
			chain[len(chain)-1] = i // overlapping sibling: keep dominant
		}
	}
	var prevEnd int64
	for k, i := range chain {
		s := b.spans[i]
		if k > 0 {
			if gap := s.StartNanos - prevEnd; gap > 0 {
				b.emit(PathSegment{
					Kind: SegBackoff, RPC: s.RPCName, Entity: s.Entity,
					Depth: bc.Depth(), StartNanos: prevEnd, DurNanos: gap,
				})
			}
		}
		// A server execution starting after the next attempt began
		// belongs to that attempt, not this one — the bound keeps a
		// failed attempt (dropped request, no target view) from
		// stealing its retry's server span.
		var nextStart int64
		if k+1 < len(chain) {
			nextStart = b.spans[chain[k+1]].StartNanos
		}
		b.expandAttempt(s, nextStart)
		prevEnd = s.StartNanos + s.DurNanos
	}
	if len(chain) > 0 {
		if term := b.spans[chain[len(chain)-1]]; term.Failed {
			b.path.Failed = true
		}
	}
	return len(chain)
}

// expandAttempt decomposes one client attempt into batch-window wait,
// request transit, queue wait, the matched server span's interior, and
// response transit. An attempt with no target view degrades to one
// unmatched segment. nextStart, when nonzero, is when the following
// retry attempt began: server executions at or past it are off-limits.
func (b *pathBuilder) expandAttempt(cs Span, nextStart int64) {
	depth := cs.Breadcrumb.Depth()
	cursor := cs.StartNanos
	csEnd := cs.StartNanos + cs.DurNanos

	if cs.WindowNanos > 0 {
		w := cs.WindowNanos
		if w > cs.DurNanos {
			w = cs.DurNanos
		}
		b.emit(PathSegment{
			Kind: SegBatchWindow, RPC: cs.RPCName, Entity: cs.Entity,
			Depth: depth, StartNanos: cursor, DurNanos: w, Failed: cs.Failed,
		})
		cursor += w
	}

	si := b.matchServer(cs, nextStart)
	if si < 0 {
		// No target view: the whole remainder is one unmatched segment
		// (a failed attempt that died in flight, or lost target events).
		b.emit(PathSegment{
			Kind: SegUnmatched, RPC: cs.RPCName, Entity: cs.Entity,
			Depth: depth, StartNanos: cursor, DurNanos: csEnd - cursor, Failed: cs.Failed,
		})
		if !cs.Failed {
			// A successful attempt should have a target view; its
			// absence means the span set is incomplete.
			b.path.Incomplete = true
		}
		return
	}
	b.serverUsed[si] = true
	ss := b.spans[si]
	ssEnd := ss.StartNanos + ss.DurNanos

	queue := ss.QueueNanos
	if max := ss.StartNanos - cursor; queue > max {
		queue = max
	}
	if queue < 0 {
		queue = 0
	}
	if net := ss.StartNanos - queue - cursor; net > 0 {
		b.emit(PathSegment{
			Kind: SegNetOut, RPC: cs.RPCName, Entity: cs.Entity,
			Depth: depth, StartNanos: cursor, DurNanos: net, Failed: cs.Failed,
		})
	}
	b.emit(PathSegment{
		Kind: SegQueue, RPC: cs.RPCName, Entity: ss.Entity,
		Depth: depth, StartNanos: ss.StartNanos - queue, DurNanos: queue, Failed: cs.Failed,
	})

	b.expandServer(ss)

	if net := csEnd - ssEnd; net > 0 {
		b.emit(PathSegment{
			Kind: SegNetBack, RPC: cs.RPCName, Entity: cs.Entity,
			Depth: depth, StartNanos: ssEnd, DurNanos: net, Failed: cs.Failed,
		})
	}
}

// expandServer decomposes a server span's interior: handler execution
// interleaved with nested hops issued by the handler. Calls from one
// handler ULT are sequential, so the interior decomposes linearly; the
// nested hops recurse through expandHop.
func (b *pathBuilder) expandServer(ss Span) {
	depth := ss.Breadcrumb.Depth()
	start, end := ss.StartNanos, ss.StartNanos+ss.DurNanos

	// Child hops: client spans issued by this entity whose callpath
	// extends this hop's, starting inside this span's window.
	type childGroup struct {
		bc       core.Breadcrumb
		idx      []int
		from, to int64
	}
	var children []childGroup
	for bc, idx := range b.clientByBC {
		if bc.Parent() != ss.Breadcrumb || bc == ss.Breadcrumb {
			continue
		}
		var mine []int
		var from, to int64
		for _, i := range idx {
			s := b.spans[i]
			if s.Entity != ss.Entity || s.StartNanos < start || s.StartNanos > end {
				continue
			}
			if len(mine) == 0 || s.StartNanos < from {
				from = s.StartNanos
			}
			if e := s.StartNanos + s.DurNanos; e > to {
				to = e
			}
			mine = append(mine, i)
		}
		if len(mine) > 0 {
			children = append(children, childGroup{bc: bc, idx: mine, from: from, to: to})
		}
	}
	sort.Slice(children, func(i, j int) bool {
		if children[i].from != children[j].from {
			return children[i].from < children[j].from
		}
		return children[i].bc < children[j].bc
	})

	cursor := start
	for _, ch := range children {
		if ch.from > cursor {
			b.emit(PathSegment{
				Kind: SegExec, RPC: ss.RPCName, Entity: ss.Entity,
				Depth: depth, StartNanos: cursor, DurNanos: ch.from - cursor, Failed: ss.Failed,
			})
		}
		b.expandHop(ch.bc, ch.idx)
		if ch.to > cursor {
			cursor = ch.to
		}
	}
	if end > cursor {
		b.emit(PathSegment{
			Kind: SegExec, RPC: ss.RPCName, Entity: ss.Entity,
			Depth: depth, StartNanos: cursor, DurNanos: end - cursor, Failed: ss.Failed,
		})
	}
}

// matchServer finds the unused target view of one client attempt: the
// first unused server span of the same breadcrumb whose Lamport order
// follows the attempt's start (the t5 merge ticks past the t1 order, so
// a server execution can never precede the attempt that caused it).
// beforeNanos, when nonzero, excludes server spans starting at or after
// it — they belong to a later retry attempt. (The bound is a timestamp,
// not an order: a dropped response leaves the retry's t1 concurrent
// with the first execution's t5, so Lamport order alone cannot split
// attempts. It misattributes only when cross-process clock skew
// exceeds the retry backoff gap.)
func (b *pathBuilder) matchServer(cs Span, beforeNanos int64) int {
	for _, i := range b.serverByBC[cs.Breadcrumb] {
		if b.serverUsed[i] {
			continue
		}
		s := b.spans[i]
		if s.StartOrder < cs.StartOrder {
			continue
		}
		if beforeNanos > 0 && s.StartNanos >= beforeNanos {
			continue
		}
		return i
	}
	return -1
}

// shapeOf builds the fold key: one token per segment, encoding kind,
// hop RPC, and depth — entities are deliberately excluded so the same
// logical path through different shards/processes folds together.
func shapeOf(segs []PathSegment) string {
	var sb strings.Builder
	for i, s := range segs {
		if i > 0 {
			sb.WriteByte('|')
		}
		fmt.Fprintf(&sb, "%d:%s.%s", s.Depth, s.RPC, s.Kind)
	}
	return sb.String()
}

// IncompleteRequests counts requests whose span set lacks any t5/t8
// target pair despite having origin events — requests that would
// otherwise be silently skipped by span-level analyses.
func (ts *TraceSet) IncompleteRequests() int {
	type seen struct{ origin, target bool }
	byReq := make(map[uint64]*seen)
	for _, e := range ts.Events {
		s := byReq[e.RequestID]
		if s == nil {
			s = &seen{}
			byReq[e.RequestID] = s
		}
		switch e.Kind {
		case core.EvOriginStart, core.EvOriginEnd:
			s.origin = true
		case core.EvTargetStart, core.EvTargetEnd:
			s.target = true
		}
	}
	n := 0
	for _, s := range byReq {
		if s.origin && !s.target {
			n++
		}
	}
	return n
}
