package dataloader

import (
	"bytes"
	"fmt"
	"testing"

	"symbiosys/internal/abt"
	"symbiosys/internal/core"
	"symbiosys/internal/margo"
	"symbiosys/internal/na"
	"symbiosys/internal/services/hepnos"
	"symbiosys/internal/services/sdskv"
)

func TestEventGenDeterministic(t *testing.T) {
	g1 := NewEventGen("ds", 512, 7)
	g2 := NewEventGen("ds", 512, 7)
	for i := 0; i < 10; i++ {
		k1, v1 := g1.Event(i)
		k2, v2 := g2.Event(i)
		if k1 != k2 || !bytes.Equal(v1, v2) {
			t.Fatalf("event %d differs across generators", i)
		}
		if len(v1) != 512 {
			t.Fatalf("event %d size = %d", i, len(v1))
		}
	}
	// Different seeds differ.
	g3 := NewEventGen("ds", 512, 8)
	_, v1 := g1.Event(0)
	_, v3 := g3.Event(0)
	if bytes.Equal(v1, v3) {
		t.Fatal("different seeds produced identical payloads")
	}
	// Default size applies.
	if g := NewEventGen("d", 0, 1); g.Size != 1024 {
		t.Fatalf("default size = %d", g.Size)
	}
}

func TestEventGenHierarchy(t *testing.T) {
	g := NewEventGen("nova", 64, 1)
	k, _ := g.Event(12345)
	if k.DataSet != "nova" || k.Run != 12 || k.Event != 12345 {
		t.Fatalf("key = %+v", k)
	}
}

func TestRunStoresEverything(t *testing.T) {
	f := na.NewFabric(na.DefaultConfig())
	srvInst, err := margo.New(margo.Options{
		Mode: margo.ModeServer, Node: "s0", Name: "hepnos", Fabric: f,
		HandlerStreams: 4, Stage: core.StageFull,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srvInst.Shutdown()
	srv, err := hepnos.NewServer(srvInst, 4, "map", sdskv.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := margo.New(margo.Options{
		Mode: margo.ModeClient, Node: "c0", Name: "loader", Fabric: f, Stage: core.StageFull,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Shutdown()

	const events = 300
	stored, err := Run(cli, Config{
		Events:    events,
		EventSize: 128,
		BatchSize: 16,
		Issuers:   3,
		Servers:   []hepnos.ServerInfo{{Addr: srv.Addr(), DBIDs: srv.DBIDs}},
		Seed:      42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stored != events {
		t.Fatalf("stored = %d, want %d", stored, events)
	}
	if got := srv.StoredEvents(); got != events {
		t.Fatalf("server holds %d, want %d", got, events)
	}
}

func TestRunAsyncEngine(t *testing.T) {
	f := na.NewFabric(na.DefaultConfig())
	srvInst, err := margo.New(margo.Options{
		Mode: margo.ModeServer, Node: "s0", Name: "hepnos", Fabric: f, HandlerStreams: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srvInst.Shutdown()
	srv, err := hepnos.NewServer(srvInst, 2, "map", sdskv.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := margo.New(margo.Options{
		Mode: margo.ModeClient, Node: "c0", Name: "loader", Fabric: f,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Shutdown()

	stored, err := Run(cli, Config{
		Events:      200,
		EventSize:   64,
		BatchSize:   1, // every event its own RPC, via the async window
		MaxInflight: 16,
		Issuers:     2,
		Servers:     []hepnos.ServerInfo{{Addr: srv.Addr(), DBIDs: srv.DBIDs}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stored != 200 {
		t.Fatalf("stored = %d", stored)
	}
	if got := srv.StoredEvents(); got != 200 {
		t.Fatalf("server holds %d", got)
	}
}

func TestRunPropagatesBackendError(t *testing.T) {
	f := na.NewFabric(na.DefaultConfig())
	cli, err := margo.New(margo.Options{
		Mode: margo.ModeClient, Node: "c0", Name: "loader", Fabric: f,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Shutdown()
	// Point the loader at a dead address: the flush must fail.
	_, err = Run(cli, Config{
		Events: 8, BatchSize: 1, Issuers: 1,
		Servers: []hepnos.ServerInfo{{Addr: "ghost/none", DBIDs: []uint32{1}}},
	})
	if err == nil {
		t.Fatal("loader against dead server succeeded")
	}
	_ = fmt.Sprintf
	_ = abt.StateReady
}
