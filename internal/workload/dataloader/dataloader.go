// Package dataloader reimplements the HEPnOS "data-loader" workflow step
// the paper studies (§V-C1): reading particle-physics event data and
// writing it into the HEPnOS service. The paper's loader parses HDF5
// files from a parallel filesystem; neither the files nor HDF5 matter to
// the RPC behaviour under study, so this loader substitutes a seeded
// synthetic event generator producing serialized event records with the
// same size characteristics (substitution documented in DESIGN.md).
//
// The loader runs a configurable number of issuer ULTs per client
// process, each batching events through its own HEPnOS client — the
// "ULTs issuing RPC requests" that compete with the Mercury progress
// ULT in the paper's §V-C4 study.
package dataloader

import (
	"fmt"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/margo"
	"symbiosys/internal/services/hepnos"
)

// EventGen deterministically synthesizes serialized event records.
type EventGen struct {
	DataSet string
	// Size is the serialized event payload size in bytes.
	Size int
	seed uint64
}

// NewEventGen returns a generator for the named dataset.
func NewEventGen(dataset string, size int, seed uint64) *EventGen {
	if size <= 0 {
		size = 1024
	}
	return &EventGen{DataSet: dataset, Size: size, seed: seed}
}

// Event returns the key and serialized payload of event i.
func (g *EventGen) Event(i int) (hepnos.EventKey, []byte) {
	key := hepnos.EventKey{
		DataSet: g.DataSet,
		Run:     uint64(i / 1000),
		SubRun:  uint64((i / 100) % 10),
		Event:   uint64(i),
	}
	// xorshift-filled payload: deterministic, incompressible-ish, cheap.
	buf := make([]byte, g.Size)
	x := g.seed ^ uint64(i)*0x9e3779b97f4a7c15
	for j := 0; j < len(buf); j += 8 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		for k := 0; k < 8 && j+k < len(buf); k++ {
			buf[j+k] = byte(x >> (8 * k))
		}
	}
	return key, buf
}

// Config drives one client process's share of the load.
type Config struct {
	// Events is the number of events this client process stores.
	Events int
	// EventSize is the serialized payload size.
	EventSize int
	// BatchSize is the HEPnOS batching knob (Table IV).
	BatchSize int
	// MaxInflight enables the async flush engine with that many
	// outstanding put_packed RPCs per issuer (0/1 = synchronous).
	MaxInflight int
	// IssueCost is the modeled per-RPC client preparation cost.
	IssueCost time.Duration
	// Issuers is the number of concurrent issuing ULTs.
	Issuers int
	// Servers describes the HEPnOS deployment.
	Servers []hepnos.ServerInfo
	// Seed makes the generated events deterministic per client.
	Seed uint64
}

// Run stores cfg.Events synthetic events from inst, splitting the range
// across cfg.Issuers concurrent ULTs, and blocks until every issuer has
// flushed. It returns the total number of events stored.
func Run(inst *margo.Instance, cfg Config) (uint64, error) {
	if cfg.Issuers <= 0 {
		cfg.Issuers = 1
	}
	gen := NewEventGen("loader/"+inst.Addr(), cfg.EventSize, cfg.Seed)

	per := cfg.Events / cfg.Issuers
	errs := make([]error, cfg.Issuers)
	stored := make([]uint64, cfg.Issuers)
	ults := make([]*abt.ULT, cfg.Issuers)
	for w := 0; w < cfg.Issuers; w++ {
		w := w
		lo := w * per
		hi := lo + per
		if w == cfg.Issuers-1 {
			hi = cfg.Events
		}
		ults[w] = inst.Run(fmt.Sprintf("loader-%d", w), func(self *abt.ULT) {
			client, err := hepnos.NewClient(inst, cfg.Servers, hepnos.Options{
				BatchSize:   cfg.BatchSize,
				MaxInflight: cfg.MaxInflight,
				IssueCost:   cfg.IssueCost,
			})
			if err != nil {
				errs[w] = err
				return
			}
			for i := lo; i < hi; i++ {
				key, data := gen.Event(i)
				if err := client.StoreEvent(self, key, data); err != nil {
					errs[w] = err
					return
				}
			}
			if err := client.Flush(self); err != nil {
				errs[w] = err
				return
			}
			stored[w] = client.Stored()
		})
	}
	var total uint64
	for w, u := range ults {
		if err := u.Join(nil); err != nil {
			return total, err
		}
		if errs[w] != nil {
			return total, errs[w]
		}
		total += stored[w]
	}
	return total, nil
}
