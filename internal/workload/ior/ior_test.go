package ior

import (
	"testing"

	"symbiosys/internal/core"
	"symbiosys/internal/margo"
	"symbiosys/internal/na"
	"symbiosys/internal/services/mobject"
)

func newSetup(t *testing.T) (*margo.Instance, *margo.Instance) {
	t.Helper()
	f := na.NewFabric(na.DefaultConfig())
	srv, err := margo.New(margo.Options{
		Mode: margo.ModeServer, Node: "n0", Name: "mobject", Fabric: f,
		HandlerStreams: 8, Stage: core.StageFull,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mobject.RegisterProviderNode(srv, "map"); err != nil {
		t.Fatal(err)
	}
	cli, err := margo.New(margo.Options{
		Mode: margo.ModeClient, Node: "n0", Name: "ior0", Fabric: f, Stage: core.StageFull,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Shutdown(); srv.Shutdown() })
	return srv, cli
}

func TestWriteAndReadPhases(t *testing.T) {
	srv, cli := newSetup(t)
	res, err := Run(cli, Config{
		Target: srv.Addr(), Rank: 3, Segments: 5, TransferSize: 2048, ReadBack: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ObjectsWritten != 5 || res.ObjectsRead != 5 {
		t.Fatalf("result = %+v", res)
	}
	if res.BytesMoved != 2*5*2048 {
		t.Fatalf("bytes = %d", res.BytesMoved)
	}
}

func TestWriteOnlyPhase(t *testing.T) {
	srv, cli := newSetup(t)
	res, err := Run(cli, Config{
		Target: srv.Addr(), Rank: 0, Segments: 3, TransferSize: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ObjectsWritten != 3 || res.ObjectsRead != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestDeadTargetFails(t *testing.T) {
	_, cli := newSetup(t)
	if _, err := Run(cli, Config{
		Target: "nowhere/gone", Rank: 0, Segments: 1, TransferSize: 64,
	}); err == nil {
		t.Fatal("ior against dead target succeeded")
	}
}
