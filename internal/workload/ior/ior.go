// Package ior reimplements the ior benchmark driver of the paper's
// Mobject study (§V-A): each client writes a set of objects (segments ×
// transfer size) through mobject_write_op and reads them back through
// mobject_read_op, as in the paper's modified ior that uses Mobject for
// reading and writing objects.
package ior

import (
	"fmt"

	"symbiosys/internal/abt"
	"symbiosys/internal/margo"
	"symbiosys/internal/services/mobject"
)

// Config is one client process's share of the ior run.
type Config struct {
	// Target is the Mobject provider node address.
	Target string
	// Rank distinguishes this client's object namespace.
	Rank int
	// Segments is the number of objects written and read.
	Segments int
	// TransferSize is the bytes per object.
	TransferSize int
	// ReadBack enables the read phase.
	ReadBack bool
}

// Result reports one client's outcome.
type Result struct {
	ObjectsWritten int
	ObjectsRead    int
	BytesMoved     int64
}

// Run executes the write phase then (optionally) the read phase from a
// single client ULT, matching ior's per-rank sequential issue order.
func Run(inst *margo.Instance, cfg Config) (Result, error) {
	client, err := mobject.NewClient(inst)
	if err != nil {
		return Result{}, err
	}
	var res Result
	var runErr error
	u := inst.Run(fmt.Sprintf("ior-rank-%d", cfg.Rank), func(self *abt.ULT) {
		data := make([]byte, cfg.TransferSize)
		for i := range data {
			data[i] = byte(cfg.Rank + i)
		}
		for s := 0; s < cfg.Segments; s++ {
			obj := fmt.Sprintf("ior.%08d.%08d", cfg.Rank, s)
			if err := client.WriteOp(self, cfg.Target, obj, data); err != nil {
				runErr = fmt.Errorf("ior rank %d write %s: %w", cfg.Rank, obj, err)
				return
			}
			res.ObjectsWritten++
			res.BytesMoved += int64(cfg.TransferSize)
		}
		if !cfg.ReadBack {
			return
		}
		buf := make([]byte, cfg.TransferSize)
		for s := 0; s < cfg.Segments; s++ {
			obj := fmt.Sprintf("ior.%08d.%08d", cfg.Rank, s)
			n, err := client.ReadOp(self, cfg.Target, obj, buf)
			if err != nil {
				runErr = fmt.Errorf("ior rank %d read %s: %w", cfg.Rank, obj, err)
				return
			}
			res.ObjectsRead++
			res.BytesMoved += int64(n)
		}
	})
	if err := u.Join(nil); err != nil {
		return res, err
	}
	return res, runErr
}
