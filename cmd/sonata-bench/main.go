// Command sonata-bench runs the paper's Sonata study (§V-B, Figure 7):
// one origin stores a fixed-length JSON record array on one target (on
// separate nodes) in batches through sonata_store_multi_json, and the
// tool prints how the cumulative RPC execution time on the target maps
// to individual steps — input deserialization, internal RDMA transfer,
// and execution proper.
//
// Usage:
//
//	sonata-bench [-records 50000] [-batch 5000] [-size 256]
//	sonata-bench -sweep          # batch-size sweep (ablation)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"symbiosys/internal/experiments"
)

func main() {
	records := flag.Int("records", 50_000, "JSON records to store (paper: 50,000)")
	batch := flag.Int("batch", 5_000, "records per sonata_store_multi_json call (paper: 5,000)")
	size := flag.Int("size", 256, "approximate bytes per JSON record")
	sweep := flag.Bool("sweep", false, "sweep batch sizes instead of a single run")
	flag.Parse()

	if *sweep {
		fmt.Println("Sonata batch-size sweep (records fixed):")
		for _, b := range []int{100, 500, 1000, 5000, 10000} {
			res := run(*records/5, b, *size)
			fmt.Printf("  batch %6d: %3d RPCs  wall %8v  deser %5.1f%%  rdma %5.1f%%\n",
				b, res.RPCCalls, res.WallTime.Round(time.Millisecond),
				100*res.DeserFraction(), 100*res.RDMAFraction())
		}
		return
	}

	res := run(*records, *batch, *size)
	fmt.Printf("Sonata: %d records, batch %d, ~%d B/record, %d RPC calls, wall %v\n",
		*records, *batch, *size, res.RPCCalls, res.WallTime.Round(time.Millisecond))
	fmt.Println("\nCumulative target execution breakdown (Figure 7):")
	total := res.Handler + res.RDMA + res.TargetExec
	row := func(name string, v uint64) {
		fmt.Printf("  %-28s %12v  %5.1f%%\n",
			name, time.Duration(v).Round(time.Microsecond), 100*float64(v)/float64(total))
	}
	row("target handler time", res.Handler)
	row("internal RDMA transfer", res.RDMA)
	row("input deserialization", res.InputDeser)
	row("execution (exclusive)", res.ExecExclusive)
	row("output serialization", res.OutputSer)
	fmt.Printf("\ninput deserialization share: %.1f%% (paper: 27%%); internal RDMA: %.1f%% (paper: low)\n",
		100*res.DeserFraction(), 100*res.RDMAFraction())
}

func run(records, batch, size int) *experiments.SonataResult {
	res, err := experiments.RunSonata(experiments.SonataConfig{
		Records: records, BatchSize: batch, RecordSize: size,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sonata-bench:", err)
		os.Exit(1)
	}
	return res
}
