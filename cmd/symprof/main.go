// Command symprof is the SYMBIOSYS profile summary tool (paper §V-A2):
// it ingests the per-process profile dumps of a run, performs the global
// merge, and prints the dominant callpaths by cumulative end-to-end
// request latency with their per-step breakdowns and per-entity call
// distributions — the report behind the paper's Figure 6.
//
// With -diff it instead compares two runs' profiles and reports
// structural anomalies (new/vanished callpaths) and the biggest
// per-callpath latency movements — the request-flow comparison used to
// diagnose configuration changes.
//
// Usage:
//
//	symprof [-top N] profile1.json profile2.json ...
//	symprof [-top N] -dir dumps/ [-o cli|tui|html] [-out report.html]
//	symprof [-top N] -diff before-dumps/ -dir after-dumps/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"symbiosys/internal/analysis"
	"symbiosys/internal/analysis/report"
	"symbiosys/internal/core"
)

func main() {
	top := flag.Int("top", 5, "number of dominant callpaths to print")
	dir := flag.String("dir", "", "directory holding *.profile.json dumps")
	diff := flag.String("diff", "", "compare against this baseline dump directory")
	mode := flag.String("o", "cli", "output mode: cli, tui, or html")
	out := flag.String("out", "", "write the report to this file instead of stdout")
	flag.Parse()

	files := flag.Args()
	if *dir != "" {
		matches, err := filepath.Glob(filepath.Join(*dir, "*.profile.json"))
		if err != nil {
			fatal(err)
		}
		files = append(files, matches...)
	}
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "symprof: no profile dumps given; see -h")
		os.Exit(2)
	}

	var dumps []*core.ProfileDump
	for _, f := range files {
		d, err := readProfile(f)
		if err != nil {
			fatal(err)
		}
		dumps = append(dumps, d)
	}
	merged := analysis.Merge(dumps)
	fmt.Printf("ingested %d profiles from %d file(s)\n",
		len(dumps), len(files))

	if *diff != "" {
		baseline, err := loadDir(*diff)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("baseline: %d profiles from %s\n", len(baseline), *diff)
		deltas := analysis.CompareProfiles(analysis.Merge(baseline), merged)
		analysis.RenderDiff(os.Stdout, deltas, *top)
		return
	}
	// The legacy plain summary stays the cli default; -o tui/html (or
	// -out) routes through the shared report renderer.
	if *mode == "cli" && *out == "" {
		merged.RenderSummary(os.Stdout, *top)
		return
	}
	rm, err := report.ParseMode(*mode)
	if err != nil {
		fatal(err)
	}
	model := report.FromProfile("SYMBIOSYS dominant callpaths", merged, *top)
	model.Generated = time.Now().Format(time.RFC3339)
	if *out == "" {
		if err := report.Render(os.Stdout, rm, model); err != nil {
			fatal(err)
		}
		return
	}
	if err := report.WriteFile(*out, rm, model); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s report to %s\n", rm, *out)
}

// loadDir reads every profile dump in a directory.
func loadDir(dir string) ([]*core.ProfileDump, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.profile.json"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("no *.profile.json dumps in %s", dir)
	}
	var dumps []*core.ProfileDump
	for _, f := range matches {
		d, err := readProfile(f)
		if err != nil {
			return nil, err
		}
		dumps = append(dumps, d)
	}
	return dumps, nil
}

func readProfile(path string) (*core.ProfileDump, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := core.ReadProfile(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if !strings.HasSuffix(path, ".json") {
		fmt.Fprintf(os.Stderr, "symprof: warning: %s lacks .json suffix\n", path)
	}
	return d, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "symprof:", err)
	os.Exit(1)
}
