// Command mobject-ior runs the paper's ior+Mobject study (§V-A): ten
// colocated ior clients write and read objects through a single Mobject
// provider node. It prints the top-5 dominant callpaths (Figure 6) and
// can export the trace of one mobject_write_op as Zipkin v2 JSON
// (Figure 5).
//
// Usage:
//
//	mobject-ior [-clients 10] [-segments 8] [-xfer 16384]
//	mobject-ior -zipkin write_op.json
//	mobject-ior -out dumps/
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"symbiosys/internal/experiments"
)

func main() {
	clients := flag.Int("clients", 10, "number of colocated ior clients")
	segments := flag.Int("segments", 8, "objects written+read per client")
	xfer := flag.Int("xfer", 16<<10, "transfer size in bytes")
	zipkin := flag.String("zipkin", "", "write one mobject_write_op trace as Zipkin JSON")
	out := flag.String("out", "", "directory to write per-process dumps into")
	flag.Parse()

	res, err := experiments.RunMobjectIOR(experiments.MobjectConfig{
		Clients:      *clients,
		Segments:     *segments,
		TransferSize: *xfer,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("ior+Mobject: %d clients x %d segments x %d B, wall %v\n",
		*clients, *segments, *xfer, res.WallTime.Round(time.Millisecond))
	fmt.Println("\nTop 5 dominant callpaths by cumulative latency (Figure 6):")
	for i, row := range res.Dominant {
		fmt.Printf("  [%d] %-55s calls %4d  cum %10v  mean %v\n",
			i+1, row.Name, row.Count,
			time.Duration(row.CumNanos).Round(time.Microsecond), row.Mean().Round(time.Microsecond))
	}

	fmt.Printf("\nOne mobject_write_op request (%#x) decomposes into %d discrete "+
		"microservice calls (Figure 5; paper: 12):\n",
		res.WriteTraceRequestID, res.NestedWriteCalls())
	for _, s := range res.WriteSpans {
		if s.Kind != "SERVER" {
			continue
		}
		fmt.Printf("  %-28s on %-14s dur %v\n",
			s.RPCName, s.Entity, time.Duration(s.DurNanos).Round(time.Microsecond))
	}

	if *zipkin != "" {
		f, err := os.Create(*zipkin)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := res.Traces.WriteZipkin(f, res.WriteTraceRequestID); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote Zipkin v2 trace to %s\n", *zipkin)
	}
	if *out != "" {
		if err := experiments.WriteDumps(*out, res.ProfileDumps, res.TraceDumps); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %d profile and %d trace dumps to %s\n",
			len(res.ProfileDumps), len(res.TraceDumps), *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mobject-ior:", err)
	os.Exit(1)
}
