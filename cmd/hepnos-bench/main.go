// Command hepnos-bench runs the paper's HEPnOS configuration studies
// (Table IV, Figures 9–13) on the simulated platform and prints the
// series each figure plots. Optionally it persists the per-process
// profile/trace dumps for the symprof/symtrace/symstats tools.
//
// Usage:
//
//	hepnos-bench                       # run all seven configurations
//	hepnos-bench -config C2            # one configuration
//	hepnos-bench -figure 9             # the C1-vs-C2 study
//	hepnos-bench -figure 10|11|12|13
//	hepnos-bench -config C5 -out dumps/
//	hepnos-bench -scale 4              # divide event counts by 4
//	hepnos-bench -config C1 -metrics :9100   # live /metrics + /snapshot
//	hepnos-bench -chaos                # C2 under the seeded fault plan
//	hepnos-bench -chaos -chaos-drop 0.05 -chaos-delay 10ms -metrics :9100
//	hepnos-bench -overload             # overload storm + recovery scenario
//	hepnos-bench -overload -overload-clients 8 -overload-deadline 3ms
//	hepnos-bench -batch                # batch-window sweep (C4 effect)
//	hepnos-bench -batch -batch-issuers 4 -batch-ops 1024
//	hepnos-bench -elastic              # elastic scale-out 4 -> 16 -> 8
//	hepnos-bench -elastic -elastic-peak 12 -elastic-ops 200 -metrics :9100
//
// With -elastic, the run scales an elastic KV service from
// -elastic-start to -elastic-peak nodes and back down to -elastic-end
// under a sustained client load, streaming the moving shards live, and
// reports per-phase p99, migration volume, and the acked-op audit
// (zero lost is the bar; a loss is a non-zero exit).
//
// With -batch, the run drives the same multi-op workload through the
// margo coalescer at windows {1, 8, 64} (window 1 is the unbatched
// baseline) and reports per-window throughput, speedup, and the
// coalescer accounting: flush counts, coalesce ratio, and the
// flush-reason histogram.
//
// With -chaos, the run replays the configuration (default C2) under a
// deterministic fault plan (drop/dup/delay probabilities, seeded) with
// the margo retry policy absorbing failures, and reports goodput,
// retry amplification, and p99 inflation against a clean baseline.
//
// With -overload, the run drives an undersized provider past saturation
// with deadline-stamped requests, then lets it recover, and reports the
// shed rate, breaker trips, and p99 before/after recovery. A SIGINT or
// SIGTERM during any run triggers a graceful drain of the live cluster
// before exiting.
//
// With -metrics, every process gets a live telemetry sampler and the
// run serves Prometheus exposition while it executes:
//
//	curl http://localhost:9100/metrics
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"symbiosys/internal/core"
	"symbiosys/internal/experiments"
)

func main() {
	configName := flag.String("config", "", "run one configuration (C1..C7)")
	figure := flag.Int("figure", 0, "reproduce one figure (9, 10, 11, 12, or 13)")
	scale := flag.Int("scale", 1, "divide per-client event counts by this factor")
	out := flag.String("out", "", "directory to write per-process dumps into")
	metrics := flag.String("metrics", "", "serve live /metrics + /snapshot on this address during runs (e.g. :9100)")
	chaos := flag.Bool("chaos", false, "replay the configuration (default C2) under a fault plan with retries")
	chaosDrop := flag.Float64("chaos-drop", 0.01, "per-message drop probability of the fault plan")
	chaosDup := flag.Float64("chaos-dup", 0, "per-message duplication probability")
	chaosDelayProb := flag.Float64("chaos-delay-prob", 0.05, "probability a message draws the injected delay")
	chaosDelay := flag.Duration("chaos-delay", 5*time.Millisecond, "injected per-message delay")
	chaosSeed := flag.Uint64("chaos-seed", 42, "seed of the deterministic fault schedule")
	batchSweep := flag.Bool("batch", false, "run the batch-window sweep (paper C4 effect) and report coalescer stats")
	batchIssuers := flag.Int("batch-issuers", 0, "concurrent issuer ULTs for -batch (0 = scenario default)")
	batchOps := flag.Int("batch-ops", 0, "operations per issuer for -batch (0 = scenario default)")
	overload := flag.Bool("overload", false, "run the overload storm + recovery scenario")
	overloadClients := flag.Int("overload-clients", 0, "storming client processes (0 = scenario default)")
	overloadIssuers := flag.Int("overload-issuers", 0, "issuer ULTs per client (0 = scenario default)")
	overloadOps := flag.Int("overload-ops", 0, "storm operations per issuer (0 = scenario default)")
	overloadDeadline := flag.Duration("overload-deadline", 0, "absolute per-op deadline stamped on storm requests (0 = scenario default)")
	elastic := flag.Bool("elastic", false, "run the elastic scale-out/scale-in scenario with live shard migration")
	elasticStart := flag.Int("elastic-start", 0, "starting KV node count for -elastic (0 = scenario default)")
	elasticPeak := flag.Int("elastic-peak", 0, "peak KV node count for -elastic (0 = scenario default)")
	elasticEnd := flag.Int("elastic-end", 0, "final KV node count for -elastic (0 = scenario default)")
	elasticClients := flag.Int("elastic-clients", 0, "client processes for -elastic (0 = scenario default)")
	elasticOps := flag.Int("elastic-ops", 0, "operations per issuer per phase for -elastic (0 = scenario default)")
	reportDir := flag.String("report", "", "directory for automatic critical-path reports from -chaos/-overload/-batch runs")
	reportFmt := flag.String("report-format", "html", "report output mode: cli, tui, or html")
	flag.Parse()
	metricsAddr = *metrics
	reportCfg = experiments.ReportConfig{Dir: *reportDir, Mode: *reportFmt}

	// A signal during a run drains the live cluster — stop admitting,
	// finish in-flight handlers, flush sinks — instead of dying with
	// work on the wire.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		fmt.Fprintf(os.Stderr, "\nhepnos-bench: %v, draining live clusters...\n", sig)
		if err := experiments.DrainActive(5 * time.Second); err != nil {
			fmt.Fprintln(os.Stderr, "hepnos-bench: drain:", err)
			os.Exit(1)
		}
		os.Exit(130)
	}()

	switch {
	case *elastic:
		runElastic(elasticKnobs{
			start: *elasticStart, peak: *elasticPeak, end: *elasticEnd,
			clients: *elasticClients, ops: *elasticOps,
		})
	case *batchSweep:
		runBatchSweep(*batchIssuers, *batchOps)
	case *overload:
		runOverload(overloadKnobs{
			clients: *overloadClients, issuers: *overloadIssuers,
			stormOps: *overloadOps, deadline: *overloadDeadline,
		})
	case *chaos:
		name := *configName
		if name == "" {
			name = "C2"
		}
		runChaos(lookup(name), *scale, chaosKnobs{
			drop: *chaosDrop, dup: *chaosDup,
			delayProb: *chaosDelayProb, delay: *chaosDelay, seed: *chaosSeed,
		})
	case *configName != "":
		runOne(*configName, *scale, *out)
	case *figure != 0:
		runFigure(*figure, *scale)
	default:
		for _, cfg := range experiments.TableIV() {
			report(run(cfg, *scale))
		}
	}
}

// metricsAddr, when non-empty, enables live telemetry on every run.
var metricsAddr string

// reportCfg, when its Dir is non-empty, makes the chaos/overload/batch
// scenarios emit critical-path reports (flames + diffs) automatically.
var reportCfg experiments.ReportConfig

// printReports lists the report files a scenario emitted.
func printReports(paths []string) {
	for _, p := range paths {
		fmt.Printf("  report: %s\n", p)
	}
}

func lookup(name string) experiments.HEPnOSConfig {
	for _, cfg := range experiments.TableIV() {
		if strings.EqualFold(cfg.Name, name) {
			return cfg
		}
	}
	fmt.Fprintf(os.Stderr, "hepnos-bench: unknown configuration %q (want C1..C7)\n", name)
	os.Exit(2)
	panic("unreachable")
}

func run(cfg experiments.HEPnOSConfig, scale int) *experiments.HEPnOSResult {
	if scale > 1 {
		cfg.EventsPerClient /= scale
		if cfg.EventsPerClient < 64 {
			cfg.EventsPerClient = 64
		}
	}
	if metricsAddr != "" {
		cfg.MetricsAddr = metricsAddr
	}
	res, err := experiments.RunHEPnOS(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hepnos-bench:", err)
		os.Exit(1)
	}
	if res.MetricsAddr != "" {
		fmt.Printf("[%s] served live telemetry on http://%s/metrics\n", cfg.Name, res.MetricsAddr)
	}
	return res
}

func report(res *experiments.HEPnOSResult) {
	c := res.Components
	fmt.Printf("\n=== %s (clients %d, servers %d, batch %d, threads %d, dbs %d, OFI %d, progress-ES %v)\n",
		res.Config.Name, res.Config.TotalClients, res.Config.TotalServers,
		res.Config.BatchSize, res.Config.Threads, res.Config.Databases,
		res.Config.OFIMaxEvents, res.Config.ClientProgressThread)
	fmt.Printf("  wall %v   events %d   put_packed RPCs %d   trace samples %d\n",
		res.WallTime.Round(time.Millisecond), res.EventsStored,
		res.Unaccounted.Count, res.TraceSamples)
	if res.TraceDropped > 0 {
		fmt.Printf("  WARNING: %d trace events dropped at capacity\n", res.TraceDropped)
	}
	fmt.Printf("  cumulative target RPC execution %v (Fig 9 bar):\n", res.CumTargetExec.Round(time.Millisecond))
	fmt.Printf("    handler %v (%.1f%%)  exec %v  input-deser %v  rdma %v  target-cb %v\n",
		time.Duration(c[core.CompHandler]).Round(time.Millisecond), 100*res.HandlerFraction(),
		time.Duration(c[core.CompTargetExec]).Round(time.Millisecond),
		time.Duration(c[core.CompInputDeser]).Round(time.Millisecond),
		time.Duration(c[core.CompRDMA]).Round(time.Millisecond),
		time.Duration(c[core.CompTargetCB]).Round(time.Millisecond))
	fmt.Printf("  cumulative origin execution %v; unaccounted %v (%.1f%%) (Fig 11 bar)\n",
		res.CumOriginExec.Round(time.Millisecond),
		time.Duration(res.Unaccounted.Unaccount).Round(time.Millisecond),
		100*res.Unaccounted.UnaccountedFraction())
	fmt.Printf("  blocked ULTs: %d samples, max %d (Fig 10 scatter)\n",
		len(res.BlockedSeries), res.MaxBlocked())
	fmt.Printf("  ofi events read: %d samples, at-cap %.1f%% of passes (Fig 12 series)\n",
		len(res.OFISeries), 100*res.OFIAtCapFraction())
	if res.Profile != nil {
		fmt.Printf("  dominant callpath latency percentiles (two-per-octave histogram):\n")
		for _, row := range res.Profile.DominantCallpaths(3) {
			fmt.Printf("    %-28s n=%-8d p50 %-10v p95 %-10v p99 %v\n",
				row.Name, row.Count,
				row.Percentile(50).Round(time.Microsecond),
				row.Percentile(95).Round(time.Microsecond),
				row.Percentile(99).Round(time.Microsecond))
		}
	}
}

// chaosKnobs carries the -chaos-* flag values.
type chaosKnobs struct {
	drop, dup, delayProb float64
	delay                time.Duration
	seed                 uint64
}

func runChaos(base experiments.HEPnOSConfig, scale int, k chaosKnobs) {
	if metricsAddr != "" {
		base.MetricsAddr = metricsAddr
	}
	res, err := experiments.RunChaos(experiments.ChaosConfig{
		Base:         base,
		DropProb:     k.drop,
		DupProb:      k.dup,
		DelayProb:    k.delayProb,
		Delay:        k.delay,
		Seed:         k.seed,
		Scale:        scale,
		CompareClean: true,
		Report:       reportCfg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hepnos-bench:", err)
		os.Exit(1)
	}
	f := res.Faulted
	fmt.Printf("\n=== chaos %s (drop %.2f%%, dup %.2f%%, delay %v@%.0f%%, seed %d)\n",
		base.Name, 100*k.drop, 100*k.dup, k.delay, 100*k.delayProb, k.seed)
	fmt.Printf("  injected: drops %d  dups %d  delays %d  refusals %d\n",
		f.Faults.Drops, f.Faults.Dups, f.Faults.Delays, f.Faults.Refusals)
	fmt.Printf("  client resilience: retries %d  timeouts %d  exhausted %d  cancels %d\n",
		f.Retries, f.Timeouts, f.Exhausted, f.Cancels)
	fmt.Printf("  operations: %d/%d stored, %d lost\n",
		f.EventsStored, res.ExpectedEvents, res.LostEvents)
	fmt.Printf("  goodput %.0f events/s  retry amplification %.3fx\n",
		res.GoodputEventsPerSec, res.RetryAmplification)
	if res.Clean != nil {
		fmt.Printf("  wall time: clean %v -> chaos %v\n",
			res.Clean.WallTime.Round(time.Millisecond), f.WallTime.Round(time.Millisecond))
		fmt.Printf("  put_packed origin p99: clean %v -> chaos %v (%.2fx inflation)\n",
			res.P99Clean.Round(time.Microsecond), res.P99Chaos.Round(time.Microsecond),
			res.P99Inflation())
	}
	printReports(res.ReportPaths)
	if res.LostEvents != 0 {
		fmt.Fprintln(os.Stderr, "hepnos-bench: chaos run lost client operations")
		os.Exit(1)
	}
}

func runBatchSweep(issuers, ops int) {
	res, err := experiments.RunBatchSweep(experiments.BatchSweepConfig{
		Issuers:      issuers,
		OpsPerIssuer: ops,
		Report:       reportCfg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hepnos-bench:", err)
		os.Exit(1)
	}
	cfg := res.Config
	fmt.Printf("\n=== batch window sweep (%d issuers x %d ops, %d B values; paper C4 effect)\n",
		cfg.Issuers, cfg.OpsPerIssuer, cfg.ValueSize)
	for _, p := range res.Points {
		line := fmt.Sprintf("  window %3d: %8.0f ops/s  wall %-10v", p.Window, p.OpsPerSec,
			p.WallTime.Round(10*time.Microsecond))
		if p.Window == 1 {
			fmt.Printf("%s (unbatched baseline)\n", line)
			continue
		}
		fmt.Printf("%s %.1fx speedup; %d flushes, coalesce %.1f ops/flush%s\n",
			line, res.Speedup(p.Window), p.Flushes, p.CoalesceRatio, reasonSummary(p.FlushReasons))
		if p.Retries > 0 {
			fmt.Printf("              %d batch retries\n", p.Retries)
		}
	}
	printReports(res.ReportPaths)
}

// reasonSummary renders a flush-reason histogram deterministically.
func reasonSummary(reasons map[string]uint64) string {
	if len(reasons) == 0 {
		return ""
	}
	keys := make([]string, 0, len(reasons))
	for r := range reasons {
		keys = append(keys, r)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(" (")
	for i, r := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %d", r, reasons[r])
	}
	b.WriteString(")")
	return b.String()
}

// overloadKnobs carries the -overload-* flag values.
type overloadKnobs struct {
	clients, issuers, stormOps int
	deadline                   time.Duration
}

func runOverload(k overloadKnobs) {
	res, err := experiments.RunOverload(experiments.OverloadConfig{
		Clients:          k.clients,
		IssuersPerClient: k.issuers,
		StormOps:         k.stormOps,
		StormDeadline:    k.deadline,
		MetricsAddr:      metricsAddr,
		Report:           reportCfg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hepnos-bench:", err)
		os.Exit(1)
	}
	cfg := res.Config
	fmt.Printf("\n=== overload storm (%d clients x %d issuers, %d ops each, deadline %v; server %d streams, %v/op, max in-flight %d)\n",
		cfg.Clients, cfg.IssuersPerClient, cfg.StormOps, cfg.StormDeadline,
		cfg.HandlerStreams, cfg.HandlerCost, cfg.Overload.MaxInFlight)
	fmt.Printf("  storm:    %d/%d acked (%.1f%%)  p99 %v\n",
		res.StormAcked, res.StormOps, 100*res.StormSuccessRate(),
		res.StormP99.Round(time.Microsecond))
	fmt.Printf("  shed %d  expired %d  (shed rate %.1f%% of storm ops)\n",
		res.Shed, res.Expired, 100*float64(res.Shed)/float64(res.StormOps))
	fmt.Printf("  breakers: %d trips, %d local fast-fails; retries %d, exhausted %d\n",
		res.BreakerTrips, res.BreakerFastFails, res.Retries, res.Exhausted)
	fmt.Printf("  handler queue high-watermark %d (cap %d)\n",
		res.QueueHWM, cfg.Overload.MaxInFlight)
	fmt.Printf("  recovery: %d/%d acked (%.1f%%)  p99 %v (storm p99 %v)\n",
		res.RecoveryAcked, res.RecoveryOps, 100*res.RecoverySuccessRate(),
		res.RecoveryP99.Round(time.Microsecond), res.StormP99.Round(time.Microsecond))
	if res.MetricsAddr != "" {
		fmt.Printf("  served live telemetry on http://%s/metrics\n", res.MetricsAddr)
	}
	printReports(res.ReportPaths)
	if res.DrainErr != nil {
		fmt.Fprintln(os.Stderr, "hepnos-bench: drain:", res.DrainErr)
		os.Exit(1)
	}
	fmt.Printf("  graceful drain completed; %d acked-then-lost ops\n", res.LostAcked)
	if res.LostAcked != 0 {
		fmt.Fprintln(os.Stderr, "hepnos-bench: overload run acknowledged operations it lost")
		os.Exit(1)
	}
}

// elasticKnobs carries the -elastic-* flag values.
type elasticKnobs struct {
	start, peak, end, clients, ops int
}

func runElastic(k elasticKnobs) {
	res, err := experiments.RunElastic(experiments.ElasticConfig{
		StartNodes:  k.start,
		PeakNodes:   k.peak,
		EndNodes:    k.end,
		Clients:     k.clients,
		OpsPerPhase: k.ops,
		MetricsAddr: metricsAddr,
		Report:      reportCfg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hepnos-bench:", err)
		os.Exit(1)
	}
	cfg := res.Config
	fmt.Printf("\n=== elastic scale-out %d -> %d -> %d nodes (%d clients x %d issuers, %d ops/phase)\n",
		cfg.StartNodes, cfg.PeakNodes, cfg.EndNodes,
		cfg.Clients, cfg.IssuersPerClient, cfg.OpsPerPhase)
	for _, p := range res.Phases {
		fmt.Printf("  %-12s %2d nodes: %4d/%d acked  p99 %v\n",
			p.Name, p.Nodes, p.Acked, p.Ops, p.P99.Round(time.Microsecond))
	}
	fmt.Printf("  migration: %d keys out, %d in; %d dual-writes, %d read-throughs, %d redirects, %d wrong routes\n",
		res.KeysMigratedOut, res.KeysMigratedIn, res.DualWrites,
		res.ReadThroughs, res.Redirects, res.WrongRoutes)
	fmt.Printf("  p99 under migration %v vs steady %v; %d ekv_migrate_* trace spans\n",
		res.MigrationP99().Round(time.Microsecond), res.SteadyP99().Round(time.Microsecond),
		res.MigrateSpans)
	fmt.Printf("  final spread over %d nodes:\n", len(res.FinalSpread))
	addrs := make([]string, 0, len(res.FinalSpread))
	for a := range res.FinalSpread {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	for _, a := range addrs {
		fmt.Printf("    %-24s %d pairs\n", a, res.FinalSpread[a])
	}
	if res.MetricsAddr != "" {
		fmt.Printf("  served live telemetry on http://%s/metrics\n", res.MetricsAddr)
	}
	printReports(res.ReportPaths)
	if res.DrainErr != nil {
		fmt.Fprintln(os.Stderr, "hepnos-bench: drain:", res.DrainErr)
		os.Exit(1)
	}
	fmt.Printf("  audit: %d acked-then-lost ops\n", res.LostAcked)
	if res.LostAcked != 0 {
		fmt.Fprintln(os.Stderr, "hepnos-bench: elastic run acknowledged operations it lost")
		os.Exit(1)
	}
}

func runOne(name string, scale int, out string) {
	cfg := lookup(name)
	if out == "" {
		report(run(cfg, scale))
		return
	}
	if scale > 1 {
		cfg.EventsPerClient /= scale
	}
	profiles, traces, err := experiments.CollectHEPnOSDumps(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hepnos-bench:", err)
		os.Exit(1)
	}
	if err := experiments.WriteDumps(out, profiles, traces); err != nil {
		fmt.Fprintln(os.Stderr, "hepnos-bench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d profile and %d trace dumps to %s\n", len(profiles), len(traces), out)
}

func runFigure(fig, scale int) {
	switch fig {
	case 9:
		r1 := run(experiments.C1, scale)
		r2 := run(experiments.C2, scale)
		report(r1)
		report(r2)
		fmt.Printf("\nFigure 9: C1 handler share %.1f%% (paper 26.6%%); C2 %.1f%% (paper 14%%); "+
			"C2 improves cumulative target execution by %.1f%% (paper 53.3%%)\n",
			100*r1.HandlerFraction(), 100*r2.HandlerFraction(),
			100*(1-float64(r2.CumTargetExec)/float64(r1.CumTargetExec)))
	case 10:
		r2 := run(experiments.C2, scale)
		r3 := run(experiments.C3, scale)
		report(r2)
		report(r3)
		fmt.Printf("\nFigure 10: C2 issued %d RPCs (max blocked %d); C3 issued %d (max blocked %d); "+
			"C3 improves by %.1f%% (paper 28.5%%)\n",
			r2.Unaccounted.Count, r2.MaxBlocked(), r3.Unaccounted.Count, r3.MaxBlocked(),
			100*(1-float64(r3.CumTargetExec)/float64(r2.CumTargetExec)))
	case 11, 12:
		r4 := run(experiments.C4, scale)
		r5 := run(experiments.C5, scale)
		r6 := run(experiments.C6, scale)
		r7 := run(experiments.C7, scale)
		for _, r := range []*experiments.HEPnOSResult{r4, r5, r6, r7} {
			report(r)
		}
		mean := func(r *experiments.HEPnOSResult) time.Duration {
			if r.Unaccounted.Count == 0 {
				return 0
			}
			return r.CumOriginExec / time.Duration(r.Unaccounted.Count)
		}
		fmt.Printf("\nFigure 11: C4 is %.0fx faster than C5 in wall time (paper ~475x at full scale);\n"+
			"  per-RPC origin execution C5 %v -> C6 %v (%.0f%% better; paper >40%%) -> C7 %v (%.0f%% better; paper 75%%)\n",
			float64(r5.WallTime)/float64(r4.WallTime),
			mean(r5).Round(time.Microsecond), mean(r6).Round(time.Microsecond),
			100*(1-float64(mean(r6))/float64(mean(r5))),
			mean(r7).Round(time.Microsecond),
			100*(1-float64(mean(r7))/float64(mean(r6))))
		fmt.Printf("Figure 12: at-cap fraction C4 %.2f, C5 %.2f (pinned), C6 %.2f, C7 %.2f (drained)\n",
			r4.OFIAtCapFraction(), r5.OFIAtCapFraction(), r6.OFIAtCapFraction(), r7.OFIAtCapFraction())
	case 13:
		base := experiments.C4
		if scale > 1 {
			base.EventsPerClient /= scale
		}
		res, err := experiments.RunOverheadStudy(experiments.OverheadConfig{Base: base, Reps: 5})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hepnos-bench:", err)
			os.Exit(1)
		}
		fmt.Println("Figure 13: data-loader execution time per measurement stage (5 reps):")
		for _, st := range res.Stages {
			fmt.Printf("  %-12s mean %v  min %v  max %v  trace samples %d\n",
				st.Stage, st.Mean.Round(time.Millisecond),
				st.Min.Round(time.Millisecond), st.Max.Round(time.Millisecond),
				st.TraceSamples)
		}
		fmt.Printf("  full-support overhead vs baseline: %.2fx (paper: indistinguishable from variation)\n",
			res.OverheadVsBaseline(core.StageFull))
	default:
		fmt.Fprintln(os.Stderr, "hepnos-bench: -figure must be 9, 10, 11, 12, or 13")
		os.Exit(2)
	}
}
