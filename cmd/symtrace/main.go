// Command symtrace is the SYMBIOSYS trace summary and stitching tool
// (paper §V-A3): it ingests per-process trace dumps, groups events into
// distributed requests by request ID and Lamport order, and either
// prints a per-request summary or exports one request as a Zipkin v2
// JSON file for Gantt-chart visualization (the paper's Figure 5).
//
// Usage:
//
//	symtrace -dir dumps/                    # summary of all requests
//	symtrace -dir dumps/ -req 0x100000001   # one request's spans
//	symtrace -dir dumps/ -req 0x100000001 -zipkin out.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"symbiosys/internal/analysis"
	"symbiosys/internal/core"
)

func main() {
	dir := flag.String("dir", "", "directory holding *.trace.json dumps")
	jsonl := flag.String("jsonl", "", "directory holding *.trace.jsonl streams (JSONL sink output)")
	reqStr := flag.String("req", "", "request ID to inspect (hex with 0x, or decimal)")
	zipkin := flag.String("zipkin", "", "write the selected request as Zipkin v2 JSON to this file")
	gantt := flag.Bool("gantt", false, "render the selected request as an ASCII Gantt chart")
	maxList := flag.Int("n", 10, "number of requests to list in the summary")
	flag.Parse()

	files := flag.Args()
	if *dir != "" {
		matches, err := filepath.Glob(filepath.Join(*dir, "*.trace.json"))
		if err != nil {
			fatal(err)
		}
		files = append(files, matches...)
	}
	var streams []string
	if *jsonl != "" {
		matches, err := filepath.Glob(filepath.Join(*jsonl, "*.trace.jsonl"))
		if err != nil {
			fatal(err)
		}
		streams = matches
	}
	if len(files) == 0 && len(streams) == 0 {
		fmt.Fprintln(os.Stderr, "symtrace: no trace dumps given; see -h")
		os.Exit(2)
	}

	var dumps []*core.TraceDump
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		d, err := core.ReadTrace(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		dumps = append(dumps, d)
	}
	// JSONL streams are the streaming-sink export: events only, no drop
	// counter (the sink observes every event).
	for _, path := range streams {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		evs, err := core.ReadEventsJSONL(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		name := strings.TrimSuffix(filepath.Base(path), ".trace.jsonl")
		dumps = append(dumps, &core.TraceDump{Entity: name, Events: evs})
	}
	ts := analysis.MergeTraces(dumps)
	fmt.Printf("ingested %d events from %d process dump(s), %d dropped\n",
		len(ts.Events), len(dumps), ts.Dropped)

	if *reqStr == "" {
		summarize(ts, *maxList)
		return
	}
	reqID, err := parseID(*reqStr)
	if err != nil {
		fatal(err)
	}
	spans := ts.Spans(reqID)
	if len(spans) == 0 {
		fatal(fmt.Errorf("request %#x has no spans", reqID))
	}
	fmt.Printf("\nrequest %#x: %d spans\n", reqID, len(spans))
	for _, s := range spans {
		fmt.Printf("  [%6s] %-28s %-22s start+%-10v dur %v\n",
			s.Kind, s.RPCName, s.Entity,
			time.Duration(s.StartNanos-spans[0].StartNanos), time.Duration(s.DurNanos))
	}
	if *gantt {
		fmt.Println()
		analysis.RenderGantt(os.Stdout, spans, 64)
	}
	if gaps := analysis.RequestGaps(spans); len(gaps) > 0 {
		fmt.Printf("\nuncovered stretches of the root span (%.1f%% of the request):\n",
			100*analysis.UncoveredFraction(spans))
		for _, g := range gaps {
			fmt.Printf("  after %-28s %v\n", g.After, time.Duration(g.DurNanos).Round(time.Microsecond))
		}
	}
	if *zipkin != "" {
		f, err := os.Create(*zipkin)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := ts.WriteZipkin(f, reqID); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote Zipkin v2 trace to %s\n", *zipkin)
	}
}

// summarize lists the largest requests by span count.
func summarize(ts *analysis.TraceSet, n int) {
	reqs := ts.Requests()
	type row struct {
		id    uint64
		evs   int
		spans int
	}
	rows := make([]row, 0, len(reqs))
	for id, evs := range reqs {
		rows = append(rows, row{id: id, evs: len(evs), spans: len(analysis.SpansOf(id, evs))})
	}
	// Largest requests first.
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			if rows[j].spans > rows[i].spans {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
	fmt.Printf("\n%d distributed requests; largest %d:\n", len(rows), min(n, len(rows)))
	for i := 0; i < len(rows) && i < n; i++ {
		fmt.Printf("  request %#016x: %3d events, %3d spans\n",
			rows[i].id, rows[i].evs, rows[i].spans)
	}
}

func parseID(s string) (uint64, error) {
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		return strconv.ParseUint(s[2:], 16, 64)
	}
	return strconv.ParseUint(s, 10, 64)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "symtrace:", err)
	os.Exit(1)
}
