// Command symtrace is the SYMBIOSYS trace analysis tool (paper §V-A3):
// it ingests per-process trace dumps or JSONL streams, groups events
// into distributed requests by request ID and Lamport order, and
// renders per-request views (span listing, ASCII Gantt, Zipkin export,
// critical path) or whole-run views (request summary, dominant-path
// flame report). The diff subcommand aligns two runs' critical paths by
// shape and localizes regressions to a path segment.
//
// Usage:
//
//	symtrace -dir dumps/                          # summary of all requests
//	symtrace -dir dumps/ -flame [-o cli|tui|html] # dominant-path report
//	symtrace -dir dumps/ -req 0x100000001 -path   # one request, critical path
//	symtrace -dir dumps/ -req 0x100000001 -zipkin out.json
//	symtrace diff -before cleanDumps/ -after chaosDumps/ -o cli
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"symbiosys/internal/analysis"
	"symbiosys/internal/analysis/report"
	"symbiosys/internal/core"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		runDiff(os.Args[2:])
		return
	}

	dir := flag.String("dir", "", "directory holding *.trace.json dumps")
	jsonl := flag.String("jsonl", "", "directory holding *.trace.jsonl streams (JSONL sink output)")
	reqStr := flag.String("req", "", "request ID to inspect (hex with 0x, or decimal)")
	zipkin := flag.String("zipkin", "", "write the selected request as Zipkin v2 JSON to this file")
	gantt := flag.Bool("gantt", false, "render the selected request as an ASCII Gantt chart")
	path := flag.Bool("path", false, "print the selected request's critical path")
	flame := flag.Bool("flame", false, "render the whole-run dominant-path report")
	mode := flag.String("o", "cli", "report output mode: cli, tui, or html")
	out := flag.String("out", "", "write the report to this file instead of stdout")
	maxList := flag.Int("n", 10, "number of requests/path shapes to list")
	flag.Parse()

	ts, warnings, err := ingest(*dir, *jsonl, flag.Args())
	if err != nil {
		fatal(err)
	}
	for _, w := range warnings {
		fmt.Fprintln(os.Stderr, "symtrace: warning:", w)
	}

	if *flame {
		m, err := report.ParseMode(*mode)
		if err != nil {
			fatal(err)
		}
		f := analysis.BuildFlame(ts)
		model := report.FromFlame("SYMBIOSYS dominant critical paths", f, *maxList)
		model.Generated = time.Now().Format(time.RFC3339)
		model.Notes = append(warnings, model.Notes...)
		if err := emit(model, m, *out); err != nil {
			fatal(err)
		}
		return
	}

	if *reqStr == "" {
		summarize(ts, *maxList)
		return
	}
	reqID, err := parseID(*reqStr)
	if err != nil {
		fatal(err)
	}
	spans := ts.Spans(reqID)
	if len(spans) == 0 {
		fatal(fmt.Errorf("request %#x has no spans", reqID))
	}
	fmt.Printf("\nrequest %#x: %d spans\n", reqID, len(spans))
	for _, s := range spans {
		fmt.Printf("  [%6s] %-28s %-22s start+%-10v dur %v\n",
			s.Kind, s.RPCName, s.Entity,
			time.Duration(s.StartNanos-spans[0].StartNanos), time.Duration(s.DurNanos))
	}
	if *path {
		printPath(reqID, spans)
	}
	if *gantt {
		fmt.Println()
		analysis.RenderGantt(os.Stdout, spans, 64)
	}
	if gaps := analysis.RequestGaps(spans); len(gaps) > 0 {
		fmt.Printf("\nuncovered stretches of the root span (%.1f%% of the request):\n",
			100*analysis.UncoveredFraction(spans))
		for _, g := range gaps {
			fmt.Printf("  after %-28s %v\n", g.After, time.Duration(g.DurNanos).Round(time.Microsecond))
		}
	}
	if *zipkin != "" {
		f, err := os.Create(*zipkin)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := ts.WriteZipkin(f, reqID); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote Zipkin v2 trace to %s\n", *zipkin)
	}
}

// runDiff implements `symtrace diff`: extract both runs' critical
// paths, align by shape, and report the per-segment deltas.
func runDiff(argv []string) {
	fs := flag.NewFlagSet("symtrace diff", flag.ExitOnError)
	before := fs.String("before", "", "baseline run: directory holding *.trace.json dumps")
	after := fs.String("after", "", "comparison run: directory holding *.trace.json dumps")
	beforeJSONL := fs.String("before-jsonl", "", "baseline run: directory holding *.trace.jsonl streams")
	afterJSONL := fs.String("after-jsonl", "", "comparison run: directory holding *.trace.jsonl streams")
	mode := fs.String("o", "cli", "report output mode: cli, tui, or html")
	out := fs.String("out", "", "write the report to this file instead of stdout")
	top := fs.Int("n", 10, "number of path shapes to report")
	fs.Parse(argv)

	if (*before == "" && *beforeJSONL == "") || (*after == "" && *afterJSONL == "") {
		fmt.Fprintln(os.Stderr, "symtrace diff: need -before and -after dump directories; see -h")
		os.Exit(2)
	}
	m, err := report.ParseMode(*mode)
	if err != nil {
		fatal(err)
	}
	tsB, warnB, err := ingest(*before, *beforeJSONL, nil)
	if err != nil {
		fatal(fmt.Errorf("before run: %w", err))
	}
	tsA, warnA, err := ingest(*after, *afterJSONL, nil)
	if err != nil {
		fatal(fmt.Errorf("after run: %w", err))
	}
	var notes []string
	for _, w := range warnB {
		notes = append(notes, "before run: "+w)
	}
	for _, w := range warnA {
		notes = append(notes, "after run: "+w)
	}

	d := analysis.DiffFlames(analysis.BuildFlame(tsB), analysis.BuildFlame(tsA))
	model := report.FromFlameDiff("SYMBIOSYS critical-path diff", d, *top)
	model.Generated = time.Now().Format(time.RFC3339)
	model.Notes = append(notes, model.Notes...)
	if err := emit(model, m, *out); err != nil {
		fatal(err)
	}
}

// ingest loads trace dumps (JSON snapshots and/or JSONL streams) into
// one merged trace set, returning run-quality warnings (drops,
// truncated streams) rather than printing them, so reports embed them.
func ingest(dir, jsonlDir string, extra []string) (*analysis.TraceSet, []string, error) {
	files := append([]string(nil), extra...)
	if dir != "" {
		matches, err := filepath.Glob(filepath.Join(dir, "*.trace.json"))
		if err != nil {
			return nil, nil, err
		}
		files = append(files, matches...)
	}
	var streams []string
	if jsonlDir != "" {
		matches, err := filepath.Glob(filepath.Join(jsonlDir, "*.trace.jsonl"))
		if err != nil {
			return nil, nil, err
		}
		streams = matches
	}
	if len(files) == 0 && len(streams) == 0 {
		return nil, nil, fmt.Errorf("no trace dumps given; see -h")
	}

	var dumps []*core.TraceDump
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		d, err := core.ReadTrace(f)
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		dumps = append(dumps, d)
	}
	// JSONL streams are the streaming-sink export: events only, no drop
	// counter (the sink observes every event). A truncated final line —
	// a stream cut off mid-write by SIGINT or a crash — is tolerated
	// and surfaced as a warning instead of aborting the whole analysis.
	var warnings []string
	truncatedStreams := 0
	for _, path := range streams {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		evs, truncated, err := core.ReadEventsJSONL(f)
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		if truncated > 0 {
			truncatedStreams++
			warnings = append(warnings, fmt.Sprintf(
				"%s: discarded truncated final line (stream cut off mid-write); %d events kept",
				path, len(evs)))
		}
		name := strings.TrimSuffix(filepath.Base(path), ".trace.jsonl")
		dumps = append(dumps, &core.TraceDump{Entity: name, Events: evs})
	}
	ts := analysis.MergeTraces(dumps)
	fmt.Fprintf(os.Stderr, "ingested %d events from %d process dump(s), %d dropped\n",
		len(ts.Events), len(dumps), ts.Dropped)
	if ts.Dropped > 0 {
		warnings = append(warnings, fmt.Sprintf("%d trace events dropped at the capacity bound", ts.Dropped))
	}
	if inc := ts.IncompleteRequests(); inc > 0 {
		warnings = append(warnings, fmt.Sprintf(
			"%d requests have incomplete span sets (origin events but no target view)", inc))
	}
	return ts, warnings, nil
}

// emit renders the model to stdout or -out.
func emit(m *report.Model, mode report.Mode, out string) error {
	if out == "" {
		return report.Render(os.Stdout, mode, m)
	}
	if err := report.WriteFile(out, mode, m); err != nil {
		return err
	}
	fmt.Printf("wrote %s report to %s\n", mode, out)
	return nil
}

// printPath renders one request's critical path with per-segment
// attribution.
func printPath(reqID uint64, spans []analysis.Span) {
	p := analysis.PathFromSpans(reqID, spans)
	if p == nil {
		fmt.Println("\nno critical path (no complete spans)")
		return
	}
	fmt.Printf("\ncritical path: %v total, %d segments, %d attempt(s)",
		time.Duration(p.TotalNanos), len(p.Segments), p.Attempts)
	if p.Batched {
		fmt.Print(", batched")
	}
	if p.Failed {
		fmt.Print(", FAILED")
	}
	if p.Incomplete {
		fmt.Print(", INCOMPLETE")
	}
	fmt.Println()
	dom := p.DominantSegment()
	for i, s := range p.Segments {
		mark := " "
		if i == dom {
			mark = "*"
		}
		fmt.Printf("  %s d%d %-14s %-28s %-22s %v\n",
			mark, s.Depth, s.Kind, s.RPC, s.Entity, time.Duration(s.DurNanos))
	}
}

// summarize lists the largest requests by span count.
func summarize(ts *analysis.TraceSet, n int) {
	reqs := ts.Requests()
	type row struct {
		id    uint64
		evs   int
		spans int
	}
	rows := make([]row, 0, len(reqs))
	for id, evs := range reqs {
		rows = append(rows, row{id: id, evs: len(evs), spans: len(analysis.SpansOf(id, evs))})
	}
	// Largest requests first.
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			if rows[j].spans > rows[i].spans {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
	fmt.Printf("\n%d distributed requests; largest %d:\n", len(rows), min(n, len(rows)))
	for i := 0; i < len(rows) && i < n; i++ {
		fmt.Printf("  request %#016x: %3d events, %3d spans\n",
			rows[i].id, rows[i].evs, rows[i].spans)
	}
	if inc := ts.IncompleteRequests(); inc > 0 {
		fmt.Printf("incomplete_requests: %d (origin events but no target view)\n", inc)
	}
}

func parseID(s string) (uint64, error) {
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		return strconv.ParseUint(s[2:], 16, 64)
	}
	return strconv.ParseUint(s, 10, 64)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "symtrace:", err)
	os.Exit(1)
}
