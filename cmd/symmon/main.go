// Command symmon is the live terminal monitor for the SYMBIOSYS
// telemetry plane: it polls a running cluster's /snapshot endpoint and
// renders a refreshing per-instance table of queue depths, pool
// pressure, event rates, and per-callpath latency percentiles — the
// watch-it-live complement to the post-mortem symprof/symtrace tools.
//
// Usage:
//
//	symmon -addr localhost:9100              # refresh every second
//	symmon -addr localhost:9100 -interval 250ms
//	symmon -addr localhost:9100 -top 5       # callpaths per instance
//	symmon -addr localhost:9100 -once        # one snapshot, no refresh
//
// Point it at anything serving the telemetry exposition: a
// hepnos-bench run started with -metrics, or an experiments.Cluster
// with ServeMetrics.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"symbiosys/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "localhost:9100", "telemetry endpoint host:port")
	interval := flag.Duration("interval", time.Second, "refresh interval")
	top := flag.Int("top", 3, "callpaths shown per instance (0 to hide)")
	once := flag.Bool("once", false, "print one snapshot and exit")
	flag.Parse()

	// Exit the refresh loop cleanly on ^C: end the repaint with a fresh
	// line so the shell prompt does not land mid-table.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigCh
		fmt.Println()
		os.Exit(0)
	}()

	client := &http.Client{Timeout: 5 * time.Second}
	first := true
	for {
		snap, err := fetch(client, *addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "symmon: %v\n", err)
			if *once {
				os.Exit(1)
			}
			time.Sleep(*interval)
			continue
		}
		out := render(snap, *top)
		if !first && !*once {
			// Repaint in place: home the cursor and clear below.
			fmt.Print("\033[H\033[J")
		}
		fmt.Print(out)
		first = false
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

func fetch(c *http.Client, addr string) (*telemetry.Snapshot, error) {
	resp, err := c.Get("http://" + addr + "/snapshot")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /snapshot: %s", resp.Status)
	}
	var snap telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("decode snapshot: %w", err)
	}
	return &snap, nil
}

// seriesRate derives the newest per-second rate from a dumped window.
func seriesRate(d telemetry.SeriesDump) float64 {
	n := len(d.Points)
	if n < 2 {
		return 0
	}
	a, b := d.Points[n-2], d.Points[n-1]
	dt := float64(b.UnixNanos-a.UnixNanos) / 1e9
	if dt <= 0 {
		return 0
	}
	return (b.Value - a.Value) / dt
}

func render(snap *telemetry.Snapshot, top int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "symmon  %s  (%d instances)\n\n",
		time.Unix(0, snap.UnixNanos).Format("15:04:05"), len(snap.Instances))
	fmt.Fprintf(&b, "%-20s %8s %8s %10s %9s %9s %8s %8s\n",
		"INSTANCE", "CQ", "INFLT", "EV/S", "RUN", "BLK", "DROPS", "SINKERR")

	insts := append([]telemetry.InstanceSnapshot(nil), snap.Instances...)
	sort.Slice(insts, func(i, j int) bool { return insts[i].Addr < insts[j].Addr })
	for _, inst := range insts {
		var run, blk int64
		for _, p := range inst.Last.Pools {
			run += p.Runnable
			blk += p.Blocked
		}
		evRate := 0.0
		if d, ok := inst.Series["events_read"]; ok {
			evRate = seriesRate(d)
		}
		fmt.Fprintf(&b, "%-20s %8d %8d %10.0f %9d %9d %8d %8d\n",
			inst.Addr, inst.Last.CQDepth, inst.Last.RPCsInFlight, evRate,
			run, blk, inst.Last.TraceDropped, inst.Last.SinkErrors)
	}

	if top > 0 {
		fmt.Fprintf(&b, "\n%-20s %-6s %-24s %10s %10s %10s %10s\n",
			"INSTANCE", "SIDE", "CALLPATH", "CALLS", "P50", "P95", "P99")
		for _, inst := range insts {
			n := 0
			for _, cp := range inst.Callpaths {
				if n >= top {
					break
				}
				if cp.Stats.Count == 0 {
					continue
				}
				n++
				fmt.Fprintf(&b, "%-20s %-6s %-24s %10d %10v %10v %10v\n",
					inst.Addr, cp.Side, clip(cp.Path+"@"+cp.Peer, 24), cp.Stats.Count,
					cp.Stats.Percentile(50).Round(time.Microsecond),
					cp.Stats.Percentile(95).Round(time.Microsecond),
					cp.Stats.Percentile(99).Round(time.Microsecond))
			}
		}
	}
	return b.String()
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
