// Command perfgate measures the RPC hot path and gates commits on the
// result. It has two modes:
//
//	perfgate -write   run the scenarios and emit BENCH_<date>.json
//	perfgate -gate    run the scenarios and compare against the most
//	                  recent committed BENCH_*.json, exiting non-zero
//	                  on a regression (>10% time, any meaningful
//	                  allocs/op growth)
//
// The scenarios cover the layers the batching work touches: raw proc
// encode/decode through the pooled arenas, batch-frame building, and
// end-to-end forwards over the simulated fabric with and without the
// coalescer. Each scenario runs several times and keeps the fastest
// run, the standard defense against scheduler noise in a shared
// container.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/analysis"
	"symbiosys/internal/batch"
	"symbiosys/internal/core"
	"symbiosys/internal/kv"
	"symbiosys/internal/margo"
	"symbiosys/internal/mercury"
	"symbiosys/internal/na"
)

// ScenarioResult is one row of the benchmark report.
type ScenarioResult struct {
	Name        string  `json:"name"`
	Ops         int     `json:"ops"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	NsPerOp     float64 `json:"ns_per_op"`
	P50Ns       float64 `json:"p50_ns"`
	P99Ns       float64 `json:"p99_ns"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Report is the BENCH_<date>.json schema.
type Report struct {
	Date      string           `json:"date"`
	GoVersion string           `json:"go_version"`
	Scenarios []ScenarioResult `json:"scenarios"`
}

// Gate tolerances: time regressions beyond 10% plus a 15ns absolute
// slack fail — the absolute term absorbs scheduler jitter on the
// nanosecond-scale codec scenarios (10% of 36ns is below container
// noise) while staying negligible against the µs/ms-scale forward
// scenarios. Allocs/op may not grow beyond 10% plus half an
// allocation of absolute slack (so pinned zero-alloc scenarios stay
// effectively strict while amortized end-to-end counts tolerate
// jitter).
const (
	timeTolerance  = 0.10
	timeSlackNs    = 15.0
	allocTolerance = 0.10
	allocSlack     = 0.5
)

func main() {
	var (
		write = flag.Bool("write", false, "emit BENCH_<date>.json into -dir")
		gate  = flag.Bool("gate", false, "compare against newest BENCH_*.json in -dir")
		dir   = flag.String("dir", ".", "directory holding BENCH_*.json baselines")
		runs  = flag.Int("runs", 3, "repetitions per scenario (fastest kept)")
	)
	flag.Parse()
	if !*write && !*gate {
		fmt.Fprintln(os.Stderr, "perfgate: need -write or -gate")
		os.Exit(2)
	}

	rep := Report{
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
	}
	for _, sc := range scenarios() {
		best := ScenarioResult{Name: sc.name}
		for r := 0; r < *runs; r++ {
			res := sc.run()
			if r == 0 || res.NsPerOp < best.NsPerOp {
				res.Name = sc.name
				best = res
			}
		}
		fmt.Printf("%-28s %12.0f ns/op %14.0f ops/s %8.1f allocs/op  p50=%.0fns p99=%.0fns\n",
			best.Name, best.NsPerOp, best.OpsPerSec, best.AllocsPerOp, best.P50Ns, best.P99Ns)
		rep.Scenarios = append(rep.Scenarios, best)
	}

	if *gate {
		basePath, base, err := newestBaseline(*dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfgate: %v\n", err)
			os.Exit(1)
		}
		fails := compare(base, &rep)
		fmt.Printf("\ngate: comparing against %s\n", filepath.Base(basePath))
		if len(fails) > 0 {
			for _, f := range fails {
				fmt.Fprintf(os.Stderr, "REGRESSION: %s\n", f)
			}
			os.Exit(1)
		}
		fmt.Println("gate: ok (no regressions beyond tolerance)")
	}

	if *write {
		out := filepath.Join(*dir, "BENCH_"+rep.Date+".json")
		buf, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfgate: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(out, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "perfgate: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", out)
	}
}

// newestBaseline loads the lexically newest BENCH_*.json (the names
// embed an ISO date, so lexical order is chronological).
func newestBaseline(dir string) (string, *Report, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", nil, err
	}
	if len(matches) == 0 {
		return "", nil, fmt.Errorf("no BENCH_*.json baseline in %s (run 'make bench-json' and commit the result)", dir)
	}
	sort.Strings(matches)
	path := matches[len(matches)-1]
	buf, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return "", nil, fmt.Errorf("%s: %v", path, err)
	}
	return path, &rep, nil
}

// compare returns one message per regression of cur against base.
// Scenarios new in cur pass (no baseline yet); scenarios that vanished
// from cur fail (the gate must not silently lose coverage).
func compare(base, cur *Report) []string {
	curBy := map[string]ScenarioResult{}
	for _, s := range cur.Scenarios {
		curBy[s.Name] = s
	}
	var fails []string
	for _, b := range base.Scenarios {
		c, ok := curBy[b.Name]
		if !ok {
			fails = append(fails, fmt.Sprintf("%s: scenario missing from current run", b.Name))
			continue
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+timeTolerance)+timeSlackNs {
			fails = append(fails, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (+%.1f%%, tolerance %.0f%% + %.0fns)",
				b.Name, c.NsPerOp, b.NsPerOp, 100*(c.NsPerOp/b.NsPerOp-1), 100*timeTolerance, timeSlackNs))
		}
		if c.AllocsPerOp > b.AllocsPerOp*(1+allocTolerance)+allocSlack {
			fails = append(fails, fmt.Sprintf("%s: %.2f allocs/op vs baseline %.2f",
				b.Name, c.AllocsPerOp, b.AllocsPerOp))
		}
	}
	return fails
}

// ---------------------------------------------------------------------
// Scenarios.

type scenario struct {
	name string
	run  func() ScenarioResult
}

func scenarios() []scenario {
	return []scenario{
		{"proc_encode", runProcEncode},
		{"proc_decode", runProcDecode},
		{"batch_add", runBatchAdd},
		{"quantum_switch", runQuantumSwitch},
		{"pool_contention", runPoolContention},
		{"forward_unbatched", func() ScenarioResult { return runForward(nil, 512, 1) }},
		{"forward_batched_w64", func() ScenarioResult {
			return runForward(&batch.Policy{MaxOps: 64, MaxDelay: 200 * time.Microsecond}, 4096, 64)
		}},
		{"critical_path_extract", runCriticalPathExtract},
		{"route_lookup", runRouteLookup},
	}
}

// kvPayload is a representative KV request body.
type kvPayload struct {
	DB    uint32
	Key   []byte
	Value []byte
}

func (a *kvPayload) Proc(p *mercury.Proc) error {
	if err := p.Uint32(&a.DB); err != nil {
		return err
	}
	if err := p.Bytes(&a.Key); err != nil {
		return err
	}
	return p.Bytes(&a.Value)
}

func samplePayload() *kvPayload {
	return &kvPayload{DB: 7, Key: []byte("bench/key/000123"), Value: make([]byte, 256)}
}

// measure times fn (which performs ops operations), sampling latency in
// chunks: fn is called once per chunk and each call's mean per-op time
// is one percentile sample.
func measure(name string, chunks, opsPerChunk int, fn func()) ScenarioResult {
	samples := make([]float64, 0, chunks)
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	t0 := time.Now()
	for c := 0; c < chunks; c++ {
		s := time.Now()
		fn()
		samples = append(samples, float64(time.Since(s).Nanoseconds())/float64(opsPerChunk))
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&ms1)
	ops := chunks * opsPerChunk
	sort.Float64s(samples)
	pct := func(q float64) float64 {
		if len(samples) == 0 {
			return 0
		}
		i := int(q * float64(len(samples)-1))
		return samples[i]
	}
	return ScenarioResult{
		Name:        name,
		Ops:         ops,
		OpsPerSec:   float64(ops) / elapsed.Seconds(),
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(ops),
		P50Ns:       pct(0.50),
		P99Ns:       pct(0.99),
		AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(ops),
	}
}

func runProcEncode() ScenarioResult {
	in := samplePayload()
	buf := make([]byte, 0, 4096)
	// Warm the pools once so the measured loop sees the steady state.
	if _, err := mercury.AppendEncode(buf, in); err != nil {
		panic(err)
	}
	const chunk = 256
	return measure("proc_encode", 400, chunk, func() {
		for i := 0; i < chunk; i++ {
			out, err := mercury.AppendEncode(buf[:0], in)
			if err != nil {
				panic(err)
			}
			_ = out
		}
	})
}

func runProcDecode() ScenarioResult {
	in := samplePayload()
	wire, err := mercury.Encode(in)
	if err != nil {
		panic(err)
	}
	// The destination is reused across iterations so the capacity-reuse
	// decode path applies (fresh structs allocate by design).
	dst := &kvPayload{Key: make([]byte, 0, 64), Value: make([]byte, 0, 512)}
	if err := mercury.Decode(wire, dst); err != nil {
		panic(err)
	}
	const chunk = 256
	return measure("proc_decode", 400, chunk, func() {
		for i := 0; i < chunk; i++ {
			if err := mercury.Decode(wire, dst); err != nil {
				panic(err)
			}
		}
	})
}

func runBatchAdd() ScenarioResult {
	in := samplePayload()
	b := mercury.AcquireBatch()
	defer b.Release()
	meta := mercury.Meta{RequestID: 1, Breadcrumb: 2, DeadlineNanos: 0, Priority: 0}
	const chunk = 64
	return measure("batch_add", 400, chunk, func() {
		b.Reset()
		for i := 0; i < chunk; i++ {
			if err := b.Add(in, meta); err != nil {
				panic(err)
			}
		}
	})
}

// twoHopTraceEvents fabricates one clean two-hop request (client →
// mid-tier → leaf) with queue waits on both target starts. The shape
// mirrors twoHopEvents in internal/analysis/path_test.go — keep the
// workloads in sync so BenchmarkExtractPaths and this scenario track
// the same code path.
func twoHopTraceEvents(reqID uint64, base int64) []core.Event {
	bcMid := core.Breadcrumb(0).Push("a_rpc")
	bcLeaf := bcMid.Push("b_rpc")
	evs := []core.Event{
		{RequestID: reqID, Kind: core.EvOriginStart, Timestamp: base,
			Entity: "cli", RPCName: "a_rpc", Breadcrumb: uint64(bcMid)},
		{RequestID: reqID, Kind: core.EvTargetStart, Timestamp: base + 100,
			Entity: "mid", RPCName: "a_rpc", Breadcrumb: uint64(bcMid), QueueNanos: 40},
		{RequestID: reqID, Kind: core.EvOriginStart, Timestamp: base + 200,
			Entity: "mid", RPCName: "b_rpc", Breadcrumb: uint64(bcLeaf)},
		{RequestID: reqID, Kind: core.EvTargetStart, Timestamp: base + 300,
			Entity: "leaf", RPCName: "b_rpc", Breadcrumb: uint64(bcLeaf), QueueNanos: 30},
		{RequestID: reqID, Kind: core.EvTargetEnd, Timestamp: base + 400,
			Entity: "leaf", RPCName: "b_rpc", Breadcrumb: uint64(bcLeaf), Duration: 100},
		{RequestID: reqID, Kind: core.EvOriginEnd, Timestamp: base + 500,
			Entity: "mid", RPCName: "b_rpc", Breadcrumb: uint64(bcLeaf), Duration: 300},
		{RequestID: reqID, Kind: core.EvTargetEnd, Timestamp: base + 600,
			Entity: "mid", RPCName: "a_rpc", Breadcrumb: uint64(bcMid), Duration: 500},
		{RequestID: reqID, Kind: core.EvOriginEnd, Timestamp: base + 700,
			Entity: "cli", RPCName: "a_rpc", Breadcrumb: uint64(bcMid), Duration: 700},
	}
	for i := range evs {
		evs[i].Order = uint64(i + 1)
	}
	return evs
}

// runCriticalPathExtract measures the analysis plane's per-request
// critical-path extraction over a merged 64-request two-hop trace set
// — the per-op cost of turning raw span trees into attributed path
// segments, which every flame and diff report pays up front.
func runCriticalPathExtract() ScenarioResult {
	var dumps []*core.TraceDump
	for i := 0; i < 64; i++ {
		dumps = append(dumps, &core.TraceDump{
			Entity: "d", Events: twoHopTraceEvents(uint64(i+1), 1_000_000_000+int64(i)*10_000),
		})
	}
	ts := analysis.MergeTraces(dumps)
	// One warmup extraction primes the per-request grouping maps.
	if paths, _ := analysis.ExtractPaths(ts); len(paths) != 64 {
		panic("critical_path_extract: warmup extracted wrong path count")
	}
	const chunk = 8
	return measure("critical_path_extract", 400, chunk, func() {
		for i := 0; i < chunk; i++ {
			paths, _ := analysis.ExtractPaths(ts)
			if len(paths) != 64 {
				panic("critical_path_extract: wrong path count")
			}
		}
	})
}

// runRouteLookup measures the elastic routing hot path: one rendezvous
// Ring.Owner resolution per op over a 16-member ring with realistic
// keys. Every client put/get and every migration sweep pays this cost
// per key, so it must stay zero-alloc and tens of nanoseconds.
func runRouteLookup() ScenarioResult {
	members := make([]string, 16)
	for i := range members {
		members[i] = fmt.Sprintf("elastic-kv%d/ekv%d", i, i)
	}
	ring := kv.NewRing(1, members)
	keys := make([][]byte, 512)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("dataset/run%02d/event%06d", i%5, i))
	}
	const chunk = 512
	return measure("route_lookup", 400, chunk, func() {
		for i := 0; i < chunk; i++ {
			if ring.Owner(keys[i]) == "" {
				panic("route_lookup: empty owner")
			}
		}
	})
}

// runQuantumSwitch measures the scheduler's context-switch cost: one
// execution stream running a detached ULT through a burst of yields.
// Each op is one quantum switch (yield disposition, requeue into the
// stream's local ring, next run grant); the free list and persistent
// worker goroutine keep the steady state allocation-free, which the
// gate's allocs/op comparison pins.
func runQuantumSwitch() ScenarioResult {
	rt := abt.NewRuntime()
	p := rt.AddPool("main")
	rt.AddXStreams("es", 1, p)
	defer rt.Shutdown()

	const yields = 256
	done := make(chan struct{})
	body := func(self *abt.ULT) {
		for i := 0; i < yields; i++ {
			self.Yield()
		}
		done <- struct{}{}
	}
	spawnRun := func() {
		p.CreateDetached("q", body)
		<-done
	}
	spawnRun() // warm the free list and worker goroutine
	return measure("quantum_switch", 400, yields, spawnRun)
}

// runPoolContention measures the shared-pool handoff under contention:
// four goroutines push detached ULTs into one pool drained by four
// execution streams, exercising the inject queue, wake propagation,
// steals, and park/unpark — the server-side dispatch path of a busy
// handler pool.
func runPoolContention() ScenarioResult {
	rt := abt.NewRuntime()
	p := rt.AddPool("main")
	rt.AddXStreams("es", 4, p)
	defer rt.Shutdown()

	const batch = 256
	const pushers = 4
	done := make(chan struct{}, batch)
	body := func(self *abt.ULT) {
		self.Yield()
		done <- struct{}{}
	}
	fn := func() {
		var wg sync.WaitGroup
		for g := 0; g < pushers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < batch/pushers; i++ {
					p.CreateDetached("c", body)
				}
			}()
		}
		wg.Wait()
		for i := 0; i < batch; i++ {
			<-done
		}
	}
	fn() // warm the free list and worker goroutines
	return measure("pool_contention", 200, batch, fn)
}

// runForward measures end-to-end echo RPCs over the simulated fabric:
// pol==nil issues sequential Forwards; otherwise ops are issued through
// ForwardMany in window-sized groups so the coalescer vectors them.
func runForward(pol *batch.Policy, ops, window int) ScenarioResult {
	const rpcEcho = "perf_echo"
	f := na.NewFabric(na.DefaultConfig())
	srv, err := margo.New(margo.Options{
		Mode: margo.ModeServer, Node: "ps", Name: "srv", Fabric: f, HandlerStreams: 4,
	})
	if err != nil {
		panic(err)
	}
	defer srv.Shutdown()
	cli, err := margo.New(margo.Options{
		Mode: margo.ModeClient, Node: "pc", Name: "cli", Fabric: f, Batch: pol,
	})
	if err != nil {
		panic(err)
	}
	defer cli.Shutdown()
	if err := srv.Register(rpcEcho, func(ctx *margo.Context) {
		var in kvPayload
		if err := ctx.GetInput(&in); err != nil {
			ctx.RespondError("decode: %v", err)
			return
		}
		ctx.Respond(&in)
	}); err != nil {
		panic(err)
	}
	if err := cli.RegisterClient(rpcEcho); err != nil {
		panic(err)
	}

	name := "forward_unbatched"
	if pol != nil {
		name = fmt.Sprintf("forward_batched_w%d", window)
	}
	target := srv.Addr()
	chunks := ops / window

	var res ScenarioResult
	u := cli.Run("perfgate", func(self *abt.ULT) {
		in := samplePayload()
		var out kvPayload
		// One warmup round trip primes registries, pools, and arenas.
		if err := cli.Forward(self, target, rpcEcho, in, &out); err != nil {
			panic(err)
		}
		if pol == nil {
			res = measure(name, chunks, window, func() {
				if err := cli.Forward(self, target, rpcEcho, in, &out); err != nil {
					panic(err)
				}
			})
			return
		}
		ins := make([]mercury.Procable, window)
		outs := make([]mercury.Procable, window)
		bodies := make([]kvPayload, window)
		for i := range ins {
			p := samplePayload()
			ins[i] = p
			outs[i] = &bodies[i]
		}
		res = measure(name, chunks, window, func() {
			for _, err := range cli.ForwardMany(self, target, rpcEcho, ins, outs) {
				if err != nil {
					panic(err)
				}
			}
		})
	})
	if err := u.Join(nil); err != nil {
		panic(err)
	}
	return res
}
