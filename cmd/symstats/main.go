// Command symstats is the SYMBIOSYS system statistics summary tool: it
// ingests per-process trace dumps and reports the resource-saturation
// view — pool runnable/blocked extremes, OFI events-read behaviour
// against the configured threshold, completion-queue extremes, and the
// realized batching view (coalesced ops per vectored flush, from the
// batch IDs stamped on origin-end events). It also prints the PVAR
// class table (paper Table I) and the list of PVARs a Mercury instance
// exports (paper Table II) — including the num_batches_* counters.
//
// Usage:
//
//	symstats -dir dumps/ [-cap 16]
//	symstats -classes
//	symstats -pvars
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"symbiosys/internal/analysis"
	"symbiosys/internal/analysis/report"
	"symbiosys/internal/core"
	"symbiosys/internal/mercury"
	"symbiosys/internal/mercury/pvar"
	"symbiosys/internal/na"
)

func main() {
	dir := flag.String("dir", "", "directory holding *.trace.json dumps")
	capEvents := flag.Uint64("cap", 16, "OFI_max_events threshold for at-cap counting")
	classes := flag.Bool("classes", false, "print the PVAR class table (paper Table I)")
	pvars := flag.Bool("pvars", false, "print the PVARs a Mercury instance exports (paper Table II)")
	mode := flag.String("o", "cli", "output mode: cli, tui, or html")
	out := flag.String("out", "", "write the report to this file instead of stdout")
	flag.Parse()

	switch {
	case *classes:
		printClasses()
	case *pvars:
		printPVars()
	case *dir != "":
		printStats(*dir, *capEvents, *mode, *out)
	default:
		fmt.Fprintln(os.Stderr, "symstats: pass -dir, -classes, or -pvars; see -h")
		os.Exit(2)
	}
}

func printClasses() {
	fmt.Println("PVAR classes (paper Table I):")
	rows := []struct {
		c    pvar.Class
		desc string
	}{
		{pvar.ClassState, "Represents any one of a set of discrete states"},
		{pvar.ClassCounter, "Monotonically increasing value"},
		{pvar.ClassTimer, "Interval event timer"},
		{pvar.ClassLevel, "Represents the utilization level of a resource"},
		{pvar.ClassSize, "Represents the size of a resource"},
		{pvar.ClassHighWatermark, "Highest recorded value"},
		{pvar.ClassLowWatermark, "Lowest recorded value"},
	}
	for _, r := range rows {
		fmt.Printf("  %-14s %s\n", r.c, r.desc)
	}
}

func printPVars() {
	// Instantiate a throwaway Mercury class to query its registry the
	// way an external tool would: session, query, finalize.
	fabric := na.NewFabric(na.DefaultConfig())
	ep, err := fabric.NewEndpoint("local", "symstats")
	if err != nil {
		fatal(err)
	}
	hg := mercury.NewClass(ep, mercury.Config{})
	session := hg.PVars().InitSession()
	defer session.Finalize()
	infos, err := session.Query()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("PVARs exported by a Mercury instance (paper Table II): %d variables\n", len(infos))
	for _, info := range infos {
		fmt.Printf("  %-34s %-14s %-10s %s\n",
			info.Name, info.Class, info.Binding, info.Description)
	}
}

func printStats(dir string, capEvents uint64, mode, out string) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.trace.json"))
	if err != nil {
		fatal(err)
	}
	if len(matches) == 0 {
		fatal(fmt.Errorf("no *.trace.json dumps in %s", dir))
	}
	var dumps []*core.TraceDump
	for _, path := range matches {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		d, err := core.ReadTrace(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		dumps = append(dumps, d)
	}
	ts := analysis.MergeTraces(dumps)
	stats := analysis.SystemStats(ts, capEvents)
	incomplete := ts.IncompleteRequests()
	// The legacy plain summary stays the cli default; -o tui/html (or
	// -out) routes through the shared report renderer.
	if mode == "cli" && out == "" {
		analysis.RenderSystemStats(os.Stdout, stats)
		if incomplete > 0 {
			fmt.Printf("\nincomplete_requests: %d (origin events but no target view)\n", incomplete)
		}
		if ts.Dropped > 0 {
			fmt.Printf("\nWARNING: %d trace events were dropped at the capacity bound;\n"+
				"the summary above undercounts. Raise the trace capacity (margo\n"+
				"Options.TraceCapacity) or attach a streaming JSONL sink.\n", ts.Dropped)
		}
		return
	}
	rm, err := report.ParseMode(mode)
	if err != nil {
		fatal(err)
	}
	model := report.FromSystemStats("SYMBIOSYS system statistics", stats, incomplete)
	model.Generated = time.Now().Format(time.RFC3339)
	if ts.Dropped > 0 {
		model.Notes = append(model.Notes, fmt.Sprintf(
			"%d trace events dropped at the capacity bound; the summary undercounts", ts.Dropped))
	}
	if out == "" {
		if err := report.Render(os.Stdout, rm, model); err != nil {
			fatal(err)
		}
		return
	}
	if err := report.WriteFile(out, rm, model); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s report to %s\n", rm, out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "symstats:", err)
	os.Exit(1)
}
