// Autotune example: the paper's §VII future work in action. A server
// starts deliberately undersized (1 execution stream, OFI budget 4);
// the policy engine watches SYMBIOSYS measurements live and applies the
// paper's remediations by itself — growing the handler pool when the
// target handler time dominates (the C1→C2 move) and raising
// OFI_max_events when the progress loop keeps reading at its budget
// (the C5→C6 move). The workload's round-trip latency improves while
// it runs, without a restart.
//
// Run with:
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/core"
	"symbiosys/internal/margo"
	"symbiosys/internal/mercury"
	"symbiosys/internal/na"
	"symbiosys/internal/policy"
)

func main() {
	fabric := na.NewFabric(na.DefaultConfig())
	server, err := margo.New(margo.Options{
		Mode: margo.ModeServer, Node: "n1", Name: "svc", Fabric: fabric,
		HandlerStreams: 1, // deliberately undersized
		Stage:          core.StageFull,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Shutdown()
	server.Register("work_rpc", func(ctx *margo.Context) {
		ctx.Compute(time.Millisecond)
		ctx.Respond(mercury.Void{})
	})

	client, err := margo.New(margo.Options{
		Mode: margo.ModeClient, Node: "n0", Name: "app", Fabric: fabric,
		Stage: core.StageFull,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Shutdown()
	client.RegisterClient("work_rpc")

	// Formulate the policies (paper §VII: rules governing response to
	// poor performance behavior).
	engine := policy.NewEngine(server, 5*time.Millisecond)
	engine.AddRule("grow-handler-pool",
		policy.HandlerSaturated(0.30, time.Millisecond),
		policy.AddHandlerStreams{N: 4, Max: 16},
		50*time.Millisecond)
	engine.AddRule("raise-ofi-budget",
		policy.ProgressStarved(0.60),
		policy.RaiseOFIMaxEvents{Factor: 4, Max: 64},
		50*time.Millisecond)
	engine.Start()
	defer engine.Stop()

	// Drive rounds of bursty load and watch latency fall as the engine
	// reconfigures the service.
	const rounds = 5
	for round := 1; round <= rounds; round++ {
		const burst = 24
		start := time.Now()
		ults := make([]*abt.ULT, burst)
		for i := range ults {
			ults[i] = client.Run("issuer", func(self *abt.ULT) {
				client.Forward(self, server.Addr(), "work_rpc", &mercury.Void{}, nil)
			})
		}
		for _, u := range ults {
			u.Join(nil)
		}
		fmt.Printf("round %d: burst of %d RPCs took %8v   (streams=%d, OFI budget=%d)\n",
			round, burst, time.Since(start).Round(time.Millisecond),
			server.HandlerStreams(), server.OFIMaxEvents())
		time.Sleep(30 * time.Millisecond) // let the engine observe and act
	}

	fmt.Println("\npolicy decisions:")
	for _, d := range engine.Decisions() {
		status := "ok"
		if d.Err != nil {
			status = d.Err.Error()
		}
		fmt.Printf("  [%s] %s -> %s (%s)\n",
			d.At.Format("15:04:05.000"), d.Rule, d.Action, status)
	}
	if len(engine.Decisions()) == 0 {
		fmt.Println("  (none fired — try a slower machine or a bigger burst)")
	}
}
