// Livemon example: the telemetry plane end to end. One server and two
// clients run a bursty RPC workload with per-instance samplers
// attached; an Exposer serves /metrics and /snapshot on a loopback
// port, and the example scrapes its own endpoint three times while the
// workload runs, printing the between-scrape deltas an operator (or
// Prometheus) would see — events read, RPCs serviced, pool pressure,
// and the dominant callpath's latency percentiles.
//
// Run with:
//
//	go run ./examples/livemon
//
// While it runs, the printed address also serves a browser/cURL-able
// live view: curl http://<addr>/metrics
package main

import (
	"fmt"
	"log"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/core"
	"symbiosys/internal/margo"
	"symbiosys/internal/mercury"
	"symbiosys/internal/na"
	"symbiosys/internal/telemetry"
)

func main() {
	fabric := na.NewFabric(na.DefaultConfig())
	tele := &telemetry.Options{Interval: 20 * time.Millisecond}

	server, err := margo.New(margo.Options{
		Mode: margo.ModeServer, Node: "n1", Name: "svc", Fabric: fabric,
		HandlerStreams: 4, Stage: core.StageFull, Telemetry: tele,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Shutdown()
	server.Register("work_rpc", func(ctx *margo.Context) {
		ctx.Compute(500 * time.Microsecond)
		ctx.Respond(mercury.Void{})
	})

	var clients []*margo.Instance
	for i := 0; i < 2; i++ {
		cli, err := margo.New(margo.Options{
			Mode: margo.ModeClient, Node: "n0", Name: fmt.Sprintf("app%d", i),
			Fabric: fabric, Stage: core.StageFull, Telemetry: tele,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer cli.Shutdown()
		cli.RegisterClient("work_rpc")
		clients = append(clients, cli)
	}

	// Aggregate every instance's sampler under one scrape endpoint.
	exposer := telemetry.NewExposer()
	exposer.Register(server.Sampler())
	for _, cli := range clients {
		exposer.Register(cli.Sampler())
	}
	addr, err := exposer.Serve("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer exposer.Close()
	fmt.Printf("serving live telemetry on http://%s/metrics (and /snapshot)\n\n", addr)

	// Background workload: each client issues bursts for ~1.5s.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			ults := make([]*abt.ULT, 0, 16)
			for _, cli := range clients {
				for j := 0; j < 8; j++ {
					cli := cli
					ults = append(ults, cli.Run("issuer", func(self *abt.ULT) {
						cli.Forward(self, server.Addr(), "work_rpc", &mercury.Void{}, nil)
					}))
				}
			}
			for _, u := range ults {
				u.Join(nil)
			}
		}
	}()

	// Three consecutive scrapes of our own endpoint, printing deltas.
	srvSampler := server.Sampler()
	var prev telemetry.Sample
	havePrev := false
	for scrapeN := 1; scrapeN <= 3; scrapeN++ {
		time.Sleep(500 * time.Millisecond)
		last, ok := srvSampler.Last()
		if !ok {
			continue
		}
		fmt.Printf("scrape %d (t=%s, %d sampler ticks)\n",
			scrapeN, time.Unix(0, last.UnixNanos).Format("15:04:05.000"), srvSampler.Ticks())
		if havePrev {
			dt := float64(last.UnixNanos-prev.UnixNanos) / 1e9
			fmt.Printf("  Δevents_read   %8d (%.0f/s)\n",
				last.EventsRead-prev.EventsRead,
				float64(last.EventsRead-prev.EventsRead)/dt)
			fmt.Printf("  Δtarget_calls  %8d (%.0f rpc/s)\n",
				last.TargetCalls-prev.TargetCalls,
				float64(last.TargetCalls-prev.TargetCalls)/dt)
			fmt.Printf("  Δtrace_events  %8d buffered (dropped +%d)\n",
				last.TraceLen-prev.TraceLen, last.TraceDropped-prev.TraceDropped)
		} else {
			fmt.Printf("  events_read %d, target_calls %d (deltas from next scrape)\n",
				last.EventsRead, last.TargetCalls)
		}
		for _, p := range last.Pools {
			if p.Name == "handlers" {
				fmt.Printf("  handler pool: runnable %d, blocked %d, executed %d\n",
					p.Runnable, p.Blocked, p.Executed)
			}
		}
		if cps := srvSampler.Callpaths(); len(cps) > 0 {
			cp := cps[0]
			fmt.Printf("  dominant callpath %s (%s): n=%d p50=%v p95=%v p99=%v\n",
				cp.Path, cp.Side, cp.Stats.Count,
				cp.Stats.Percentile(50).Round(time.Microsecond),
				cp.Stats.Percentile(95).Round(time.Microsecond),
				cp.Stats.Percentile(99).Round(time.Microsecond))
		}
		fmt.Println()
		prev, havePrev = last, true
	}

	close(stop)
	<-done
	fmt.Println("workload stopped; endpoint closing")
}
