// Quickstart: build a minimal custom microservice on the stack, call it
// over the simulated fabric, and print the SYMBIOSYS callpath profile.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/core"
	"symbiosys/internal/margo"
	"symbiosys/internal/mercury"
	"symbiosys/internal/na"
)

// greetArgs is the RPC argument/response type. One Proc method drives
// both serialization and deserialization, Mercury-style.
type greetArgs struct {
	Name  string
	Count uint64
}

func (a *greetArgs) Proc(p *mercury.Proc) error {
	p.String(&a.Name)
	p.Uint64(&a.Count)
	return p.Err()
}

func main() {
	// A fabric is the simulated interconnect; endpoints on the same
	// node see lower latency.
	fabric := na.NewFabric(na.DefaultConfig())

	// One server process with 4 handler execution streams, full
	// SYMBIOSYS instrumentation on.
	server, err := margo.New(margo.Options{
		Mode: margo.ModeServer, Node: "node1", Name: "greeter",
		Fabric: fabric, HandlerStreams: 4, Stage: core.StageFull,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Shutdown()

	// Register a handler: it runs in its own ULT and must respond.
	err = server.Register("greet_rpc", func(ctx *margo.Context) {
		var in greetArgs
		if err := ctx.GetInput(&in); err != nil {
			ctx.RespondError("bad input: %v", err)
			return
		}
		ctx.Compute(200 * time.Microsecond) // model some backend work
		out := greetArgs{Name: "hello, " + in.Name, Count: in.Count + 1}
		ctx.Respond(&out)
	})
	if err != nil {
		log.Fatal(err)
	}

	// One client process on another node.
	client, err := margo.New(margo.Options{
		Mode: margo.ModeClient, Node: "node0", Name: "app",
		Fabric: fabric, Stage: core.StageFull,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Shutdown()
	if err := client.RegisterClient("greet_rpc"); err != nil {
		log.Fatal(err)
	}

	// Application code runs in ULTs; Forward blocks the ULT (not the
	// OS thread) until the response arrives.
	ult := client.Run("app-main", func(self *abt.ULT) {
		for i := 0; i < 5; i++ {
			var out greetArgs
			in := greetArgs{Name: fmt.Sprintf("world-%d", i), Count: uint64(i)}
			if err := client.Forward(self, server.Addr(), "greet_rpc", &in, &out); err != nil {
				log.Printf("rpc failed: %v", err)
				return
			}
			fmt.Printf("reply: %s (count %d)\n", out.Name, out.Count)
		}
	})
	if err := ult.Join(nil); err != nil {
		log.Fatal(err)
	}
	client.WaitIdle(2 * time.Second)
	time.Sleep(20 * time.Millisecond) // let target-side callbacks land

	// SYMBIOSYS observed every call. Print the origin-side profile.
	fmt.Println("\nSYMBIOSYS origin-side callpath profile:")
	names := client.Profiler().Names()
	for key, stats := range client.Profiler().OriginStats() {
		fmt.Printf("  %-24s -> %-14s calls %d  mean %v  (input ser %v, origin cb %v)\n",
			names.Format(key.BC), key.Peer, stats.Count, stats.Mean().Round(time.Microsecond),
			time.Duration(stats.Components[core.CompInputSer]).Round(time.Microsecond),
			time.Duration(stats.Components[core.CompOriginCB]).Round(time.Microsecond))
	}

	// And the server saw the same callpath from the target side.
	fmt.Println("\nSYMBIOSYS target-side callpath profile:")
	snames := server.Profiler().Names()
	for key, stats := range server.Profiler().TargetStats() {
		fmt.Printf("  %-24s from %-14s calls %d  exec %v  handler wait %v\n",
			snames.Format(key.BC), key.Peer, stats.Count,
			time.Duration(stats.Components[core.CompTargetExec]).Round(time.Microsecond),
			time.Duration(stats.Components[core.CompHandler]).Round(time.Microsecond))
	}

	// The trace buffer holds the four events per call (t1, t5, t8, t14).
	fmt.Printf("\ntrace events collected: client %d, server %d\n",
		client.Profiler().TraceLen(), server.Profiler().TraceLen())
	os.Exit(0)
}
