// Tracing example: emit a Zipkin v2 JSON trace for one composed request
// (the paper's Figure 5 workflow). A Mobject provider node services one
// mobject_write_op, SYMBIOSYS records the distributed trace, and the
// adapter stitches the events from the client and provider processes
// into a single Zipkin file you can load into any Zipkin UI.
//
// Run with:
//
//	go run ./examples/tracing
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/analysis"
	"symbiosys/internal/core"
	"symbiosys/internal/margo"
	"symbiosys/internal/na"
	"symbiosys/internal/services/mobject"
)

func main() {
	fabric := na.NewFabric(na.DefaultConfig())

	// Attach a streaming JSONL sink to the provider: every trace event
	// it emits is exported on-line (ingest with `symtrace -jsonl .`),
	// independent of the bounded in-memory rings.
	jsonlFile, err := os.Create("mobject.trace.jsonl")
	if err != nil {
		log.Fatal(err)
	}
	defer jsonlFile.Close()
	jsonlSink := core.NewJSONLTraceSink(jsonlFile)

	server, err := margo.New(margo.Options{
		Mode: margo.ModeServer, Node: "node0", Name: "mobject",
		Fabric: fabric, HandlerStreams: 8, Stage: core.StageFull,
		TraceSinks: []core.TraceSink{jsonlSink},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Shutdown()
	if _, err := mobject.RegisterProviderNode(server, "map"); err != nil {
		log.Fatal(err)
	}

	client, err := margo.New(margo.Options{
		Mode: margo.ModeClient, Node: "node0", Name: "app",
		Fabric: fabric, Stage: core.StageFull,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Shutdown()
	mc, err := mobject.NewClient(client)
	if err != nil {
		log.Fatal(err)
	}

	u := client.Run("writer", func(self *abt.ULT) {
		data := make([]byte, 8192)
		if err := mc.WriteOp(self, server.Addr(), "trace-me", data); err != nil {
			log.Printf("write_op: %v", err)
		}
	})
	u.Join(nil)
	server.WaitIdle(2 * time.Second)
	time.Sleep(20 * time.Millisecond)

	// Stitch the two processes' trace buffers into one request view.
	ts := analysis.MergeTraces([]*core.TraceDump{
		client.Profiler().DumpTrace(),
		server.Profiler().DumpTrace(),
	})
	ids := ts.RequestIDs()
	if len(ids) == 0 {
		log.Fatal("no requests traced")
	}
	reqID := ids[0]
	spans := ts.Spans(reqID)
	fmt.Printf("request %#x: %d spans across %d processes\n", reqID, len(spans), 2)
	for _, s := range spans {
		indent := ""
		if s.Breadcrumb.Depth() > 1 {
			indent = "    "
		}
		fmt.Printf("  %s[%6s] %-26s dur %v\n",
			indent, s.Kind, s.RPCName, time.Duration(s.DurNanos).Round(time.Microsecond))
	}

	const out = "mobject_write_op_trace.json"
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := ts.WriteZipkin(f, reqID); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote Zipkin v2 trace to %s — load it into a Zipkin UI to see\n", out)
	fmt.Println("the Figure 5 Gantt chart: 12 discrete SDSKV/BAKE calls under one write_op")
}
