// Saturation example: detect an undersized handler pool from SYMBIOSYS
// output alone, the paper's §V-C2 workflow. The same bursty workload
// runs against a server with 2 execution streams and one with 16; the
// target ULT handler time (t4→t5) exposes the difference, and the
// remediation is chosen from the measurements, not from guesswork.
//
// Run with:
//
//	go run ./examples/saturation
package main

import (
	"fmt"
	"log"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/core"
	"symbiosys/internal/margo"
	"symbiosys/internal/mercury"
	"symbiosys/internal/na"
)

func runConfig(streams int) (handlerShare float64, cumExec time.Duration) {
	fabric := na.NewFabric(na.DefaultConfig())
	server, err := margo.New(margo.Options{
		Mode: margo.ModeServer, Node: "n1", Name: "svc",
		Fabric: fabric, HandlerStreams: streams, Stage: core.StageFull,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Shutdown()
	server.Register("work_rpc", func(ctx *margo.Context) {
		ctx.Compute(500 * time.Microsecond) // fixed request cost
		ctx.Respond(mercury.Void{})
	})

	client, err := margo.New(margo.Options{
		Mode: margo.ModeClient, Node: "n0", Name: "cli",
		Fabric: fabric, Stage: core.StageFull,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Shutdown()
	client.RegisterClient("work_rpc")

	// Burst: 32 concurrent requests from 32 ULTs.
	const burst = 32
	ults := make([]*abt.ULT, burst)
	for i := range ults {
		ults[i] = client.Run("issuer", func(self *abt.ULT) {
			client.Forward(self, server.Addr(), "work_rpc", &mercury.Void{}, nil)
		})
	}
	for _, u := range ults {
		u.Join(nil)
	}
	server.WaitIdle(2 * time.Second)
	time.Sleep(20 * time.Millisecond)

	var handler, exec, cb uint64
	for _, s := range server.Profiler().TargetStats() {
		handler += s.Components[core.CompHandler]
		exec += s.Components[core.CompTargetExec]
		cb += s.Components[core.CompTargetCB]
	}
	total := handler + exec + cb
	if total == 0 {
		return 0, 0
	}
	return float64(handler) / float64(total), time.Duration(total)
}

func main() {
	fmt.Println("diagnosing an undersized handler pool from SYMBIOSYS data")
	fmt.Println("(burst of 32 concurrent 500µs requests)")

	share2, cum2 := runConfig(2)
	fmt.Printf("\n  2 execution streams: cumulative target execution %v, handler wait share %.1f%%\n",
		cum2.Round(time.Millisecond), 100*share2)
	if share2 > 0.25 {
		fmt.Println("  -> diagnosis: requests wait in the Argobots pool; the pool is starved")
		fmt.Println("  -> remediation: add execution streams (the paper's C1 -> C2 move)")
	}

	share16, cum16 := runConfig(16)
	fmt.Printf("\n  16 execution streams: cumulative target execution %v, handler wait share %.1f%%\n",
		cum16.Round(time.Millisecond), 100*share16)
	fmt.Printf("\nimprovement from remediation: %.1f%% less cumulative execution time\n",
		100*(1-float64(cum16)/float64(cum2)))
}
