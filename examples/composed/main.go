// Composed service example: a "photo store" service composes the BAKE
// (blob) and SDSKV (metadata) microservices behind its own provider,
// exactly the composition pattern of Mobject (paper Figure 4). The
// distributed callpath profile then shows multi-hop breadcrumbs like
//
//	photo_put_rpc => bake_write_rpc
//	photo_put_rpc => sdskv_put_rpc
//
// demonstrating how SYMBIOSYS attributes time across microservice
// boundaries without any per-service instrumentation.
//
// Run with:
//
//	go run ./examples/composed
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/core"
	"symbiosys/internal/margo"
	"symbiosys/internal/mercury"
	"symbiosys/internal/na"
	"symbiosys/internal/services/bake"
	"symbiosys/internal/services/sdskv"
)

type photoArgs struct {
	Name string
	Data []byte
}

func (a *photoArgs) Proc(p *mercury.Proc) error {
	p.String(&a.Name)
	p.Bytes(&a.Data)
	return p.Err()
}

// photoService composes BAKE and SDSKV providers colocated on its node.
type photoService struct {
	inst  *margo.Instance
	bakeC *bake.Client
	kvC   *sdskv.Client
	dbID  uint32
}

func (s *photoService) handlePut(ctx *margo.Context) {
	var in photoArgs
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("photo: %v", err)
		return
	}
	self := s.inst.Addr()
	// Blob into BAKE (three nested RPCs)...
	rid, err := s.bakeC.Create(ctx.Self, self, uint64(len(in.Data)))
	if err != nil {
		ctx.RespondError("photo: create: %v", err)
		return
	}
	if err := s.bakeC.Write(ctx.Self, self, rid, 0, in.Data); err != nil {
		ctx.RespondError("photo: write: %v", err)
		return
	}
	if err := s.bakeC.Persist(ctx.Self, self, rid); err != nil {
		ctx.RespondError("photo: persist: %v", err)
		return
	}
	// ...and metadata into SDSKV (one nested RPC).
	meta := fmt.Sprintf("rid=%d;bytes=%d", rid, len(in.Data))
	if err := s.kvC.Put(ctx.Self, self, s.dbID, []byte(in.Name), []byte(meta)); err != nil {
		ctx.RespondError("photo: meta: %v", err)
		return
	}
	ctx.Respond(mercury.Void{})
}

func main() {
	fabric := na.NewFabric(na.DefaultConfig())
	server, err := margo.New(margo.Options{
		Mode: margo.ModeServer, Node: "storage", Name: "photod",
		Fabric: fabric, HandlerStreams: 8, Stage: core.StageFull,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Shutdown()

	// Compose: BAKE + SDSKV providers plus the photo provider, all on
	// one process, talking through real RPCs.
	svc := &photoService{inst: server}
	if _, err := bake.RegisterProvider(server, bake.Config{}); err != nil {
		log.Fatal(err)
	}
	kvP, err := sdskv.RegisterProvider(server, sdskv.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if svc.bakeC, err = bake.NewClient(server); err != nil {
		log.Fatal(err)
	}
	if svc.kvC, err = sdskv.NewClient(server); err != nil {
		log.Fatal(err)
	}
	if svc.dbID, err = kvP.OpenLocal("photo-meta", "map"); err != nil {
		log.Fatal(err)
	}
	if err := server.Register("photo_put_rpc", svc.handlePut); err != nil {
		log.Fatal(err)
	}

	client, err := margo.New(margo.Options{
		Mode: margo.ModeClient, Node: "login", Name: "cli",
		Fabric: fabric, Stage: core.StageFull,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Shutdown()
	client.RegisterClient("photo_put_rpc")

	u := client.Run("uploader", func(self *abt.ULT) {
		for i := 0; i < 8; i++ {
			img := make([]byte, 4096)
			in := photoArgs{Name: fmt.Sprintf("img-%03d.raw", i), Data: img}
			if err := client.Forward(self, server.Addr(), "photo_put_rpc", &in, nil); err != nil {
				log.Printf("upload: %v", err)
				return
			}
		}
	})
	u.Join(nil)
	server.WaitIdle(2 * time.Second)
	time.Sleep(20 * time.Millisecond)

	// The server's origin-side profile holds the multi-hop breadcrumbs:
	// every nested call it made on behalf of photo_put_rpc.
	fmt.Println("composed-service callpaths observed on the provider node:")
	names := server.Profiler().Names()
	type row struct {
		name string
		s    core.CallStats
	}
	var rows []row
	for key, stats := range server.Profiler().OriginStats() {
		rows = append(rows, row{names.Format(key.BC), stats})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].s.CumNanos > rows[j].s.CumNanos })
	for _, r := range rows {
		fmt.Printf("  %-42s calls %2d  cum %v\n",
			r.name, r.s.Count, time.Duration(r.s.CumNanos).Round(time.Microsecond))
	}
}
