GO ?= go

.PHONY: all build test race vet check bench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the concurrency-heavy packages: the sharded
# measurement collector and the Margo instrumentation that records into
# it from many execution streams.
race:
	$(GO) test -race ./internal/core/... ./internal/margo/...

# check is the pre-commit gate: static analysis, race tests on the
# measurement pipeline, then the full tier-1 build + test sweep.
check: vet race build test

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .
