GO ?= go

.PHONY: all build test race vet check bench bench-json bench-gate smoke-metrics chaos-smoke overload-smoke analyze-smoke elastic-smoke

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the concurrency-heavy packages: the sharded
# measurement collector, the Margo instrumentation that records into it
# from many execution streams, the telemetry sampler/exposer that reads
# it live, the policy engine fed by the sampler, the fabric's
# completion-queue accessors, per-destination delivery chains, and
# fault-injection plane, Mercury's cancel-vs-response completion race,
# the work-stealing abt scheduler (SPMC ring deques, the evsem
# park/unpark handshake, ULT free-list recycling, and the lock-free
# pool-depth mirrors feeding admission control — stressed directly by
# the sched_test.go steal/park and lost-wakeup property tests), and
# the batch window/coalescer state machine, plus the elastic plane:
# the SSG membership host/agent churned from many ULTs, the rendezvous
# ring, and the ekv migration engine's dual-write/dirty-set machinery.
race:
	$(GO) test -race ./internal/core/... ./internal/margo/... \
		./internal/telemetry/... ./internal/policy/... ./internal/na/... \
		./internal/mercury/... ./internal/abt/... ./internal/batch/... \
		./internal/ssg/... ./internal/kv/... ./internal/services/...

# check is the pre-commit gate: static analysis, race tests on the
# measurement pipeline, the fault-path, overload-path, and analysis-
# plane smoke runs, the full tier-1 build + test sweep, then the
# perf-regression gate against the committed BENCH_*.json baseline.
check: vet race chaos-smoke overload-smoke analyze-smoke elastic-smoke build test bench-gate

# bench-json measures the RPC hot path (proc codec, batch building,
# scheduler quantum switches and contended pool handoffs, unbatched vs
# coalesced forwards) and writes BENCH_<date>.json — the
# machine-readable baseline the gate compares against. Regenerate and
# commit it when a deliberate perf change shifts the numbers.
bench-json:
	$(GO) run ./cmd/perfgate -write

# bench-gate re-measures the same scenarios and fails on >10% time
# regression or allocs/op growth vs the newest committed BENCH_*.json.
# The gate takes more reps than -write (5 vs 3): keeping the fastest of
# more runs biases the measurement *down*, so shared-container noise
# spikes cannot manufacture a regression against a calm baseline.
bench-gate:
	$(GO) run ./cmd/perfgate -gate -runs 5

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# smoke-metrics spins up a tiny HEPnOS cluster with live telemetry,
# scrapes /metrics mid-run, and asserts the exposition is well-formed
# and carries the promised signals (pool gauges, OFI PVARs, trace-drop
# counters, callpath latency histograms).
smoke-metrics:
	$(GO) test ./internal/experiments/ -run TestSmokeMetrics -count=1 -v

# chaos-smoke replays a short C2-shaped HEPnOS run under the seeded
# 1% drop + 5ms delay fault plan and asserts the failure-path bar:
# zero lost client operations, retries visible in the live /metrics
# exposition, and a clean shutdown.
chaos-smoke:
	$(GO) test ./internal/experiments/ -run TestChaosSmoke -count=1 -v

# analyze-smoke runs the from-run-to-report pipeline end to end: a
# small chaos campaign emits its dominant-path flame and clean-vs-chaos
# diff automatically, the diff localizes the injected fault, and the
# same trace set renders in all three output modes (cli, tui, html)
# with a non-empty dominant path.
analyze-smoke:
	$(GO) test ./internal/experiments/ -run 'TestAnalyzeSmoke|TestBatchSweepReports' -count=1 -v

# elastic-smoke scales an ekv cluster out and back in under sustained
# load and asserts the elasticity bar: zero acked-then-lost ops, live
# shard migration visible in traces and /metrics, and a bounded
# churn-phase p99.
elastic-smoke:
	$(GO) test ./internal/experiments/ -run TestElasticSmoke -count=1 -v

# overload-smoke drives an undersized provider past saturation with
# deadline-stamped requests and asserts the overload-control bar: zero
# acked-then-lost ops, handler queue bounded by the admission cap,
# breaker trips during the storm, goodput recovery via half-open
# probes, and shed counters visible in /metrics and the profile dumps.
overload-smoke:
	$(GO) test ./internal/experiments/ -run TestOverloadSmoke -count=1 -v
