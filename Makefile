GO ?= go

.PHONY: all build test race vet check bench smoke-metrics

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the concurrency-heavy packages: the sharded
# measurement collector, the Margo instrumentation that records into it
# from many execution streams, the telemetry sampler/exposer that reads
# it live, the policy engine fed by the sampler, and the fabric's
# completion-queue accessors.
race:
	$(GO) test -race ./internal/core/... ./internal/margo/... \
		./internal/telemetry/... ./internal/policy/... ./internal/na/...

# check is the pre-commit gate: static analysis, race tests on the
# measurement pipeline, then the full tier-1 build + test sweep.
check: vet race build test

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# smoke-metrics spins up a tiny HEPnOS cluster with live telemetry,
# scrapes /metrics mid-run, and asserts the exposition is well-formed
# and carries the promised signals (pool gauges, OFI PVARs, trace-drop
# counters, callpath latency histograms).
smoke-metrics:
	$(GO) test ./internal/experiments/ -run TestSmokeMetrics -count=1 -v
