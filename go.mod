module symbiosys

go 1.22
