// Package symbiosys is a from-scratch Go reproduction of "SYMBIOSYS: A
// Methodology for Performance Analysis of Composable HPC Data Services"
// (Ramesh et al., IPDPS 2021): an integrated performance
// instrumentation, measurement, and analysis framework for
// microservice-based HPC data services, together with the entire Mochi
// software stack it instruments, rebuilt as simulation-friendly Go
// packages.
//
// The layers, bottom-up:
//
//   - internal/na        — OFI-like fabric: endpoints, RDMA, completion queues
//   - internal/abt       — Argobots-like tasking: execution streams, ULTs, pools
//   - internal/mercury   — Mercury-like RPC: proc codec, eager+RDMA path, bulk,
//     progress/trigger, and the PVAR introspection interface
//   - internal/margo     — Margo-like glue hosting the SYMBIOSYS instrumentation
//   - internal/core      — the paper's contribution: breadcrumb callpaths,
//     distributed tracing, measurement stages, profile/trace formats
//   - internal/analysis  — profile summary, Zipkin trace stitching, saturation
//     series, system statistics
//   - internal/services  — BAKE, SDSKV, Sonata, Mobject, HEPnOS microservices
//   - internal/workload  — ior and HEPnOS data-loader drivers
//   - internal/experiments — the paper's case studies (Figures 5–13, Tables IV–V)
//
// bench_test.go in this directory regenerates every table and figure of
// the paper's evaluation; see EXPERIMENTS.md for paper-vs-measured.
package symbiosys
